"""Persistence for tree collections.

Tree datasets are stored as plain text: one bracket-notation tree per line
(blank lines and ``#`` comments ignored).  The format is portable,
diff-friendly, and — unlike pickling the linked node structure — safe for
arbitrarily deep trees.  A loader for directories of XML documents covers
the paper's XML-repository use case.

:func:`save_database` / :func:`load_database` persist a whole
:class:`~repro.search.database.TreeDatabase` as the forest file **plus**
its feature plane (:mod:`repro.features.io`), so reloading fits the filter
without a single tree traversal (``database.features.extraction_passes``
is 0 after a load — asserted by the round-trip tests).
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.exceptions import TreeParseError
from repro.trees.node import TreeNode
from repro.trees.parse import parse_bracket, to_bracket
from repro.trees.xml_io import parse_xml_file

__all__ = [
    "save_forest",
    "load_forest",
    "load_xml_directory",
    "save_database",
    "load_database",
]

PathLike = Union[str, os.PathLike]


def save_forest(
    trees: Iterable[TreeNode],
    path: PathLike,
    header: Optional[str] = None,
) -> int:
    """Write trees to ``path`` in bracket notation, one per line.

    Returns the number of trees written.

    >>> import tempfile, os
    >>> from repro.trees import parse_bracket
    >>> path = os.path.join(tempfile.mkdtemp(), "demo.trees")
    >>> save_forest([parse_bracket("a(b,c)")], path, header="demo")
    1
    >>> load_forest(path)
    [TreeNode('a', 2 children, size=3)]
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for tree in trees:
            handle.write(to_bracket(tree))
            handle.write("\n")
            count += 1
    return count


def load_forest(path: PathLike) -> List[TreeNode]:
    """Read a bracket-notation tree collection written by :func:`save_forest`.

    Raises :class:`~repro.exceptions.TreeParseError` with the offending line
    number when a line cannot be parsed.
    """
    trees: List[TreeNode] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                trees.append(parse_bracket(text))
            except TreeParseError as exc:
                raise TreeParseError(
                    f"{path}:{line_number}: {exc}"
                ) from exc
    return trees


def _features_path(forest_path: PathLike) -> str:
    return f"{os.fspath(forest_path)}.features.json"


def save_database(database, path: PathLike, header: Optional[str] = None) -> int:
    """Persist a :class:`~repro.search.database.TreeDatabase` to disk.

    Writes the forest to ``path`` (bracket notation, one tree per line) and
    the database's feature plane — built on demand if the filter never
    needed one — to ``<path>.features.json``.  Returns the number of trees
    written.
    """
    from repro.features.io import save_feature_plane
    from repro.features.store import FeatureStore

    count = save_forest(database.trees, path, header=header)
    store = database.features
    if store is None:
        q = getattr(database.filter, "q", 2)
        store = FeatureStore((q,)).fit(database.trees)
    save_feature_plane(store, _features_path(path))
    return count


def load_database(path: PathLike, flt=None, **database_options):
    """Restore a database written by :func:`save_database`.

    The feature plane at ``<path>.features.json`` is loaded alongside the
    forest and handed to :class:`~repro.search.database.TreeDatabase`, so a
    store-capable filter is fitted without re-extracting any tree.  When
    the sidecar file is missing (e.g. a forest written by
    :func:`save_forest`), the database is built from scratch; a sidecar
    that fails to load — truncated write, foreign format, or covering a
    different number of trees than the forest — degrades the same way with
    a :class:`UserWarning` instead of refusing to open the dataset (the
    sidecar is a pure cache: correctness never depends on it).
    """
    from repro.features.io import load_feature_plane
    from repro.search.database import TreeDatabase

    trees = load_forest(path)
    store = None
    features_path = _features_path(path)
    if os.path.exists(features_path):
        try:
            store = load_feature_plane(features_path)
        except (ValueError, KeyError, IndexError, TypeError, OSError) as exc:
            warnings.warn(
                f"ignoring unreadable feature sidecar {features_path}: {exc}; "
                "features will be re-extracted",
                stacklevel=2,
            )
        else:
            if len(store) != len(trees):
                warnings.warn(
                    f"ignoring stale feature sidecar {features_path}: covers "
                    f"{len(store)} trees but the forest has {len(trees)}; "
                    "features will be re-extracted",
                    stacklevel=2,
                )
                store = None
    return TreeDatabase(trees, flt=flt, feature_store=store, **database_options)


def load_xml_directory(
    directory: PathLike,
    pattern: str = "*.xml",
    **xml_options,
) -> List[TreeNode]:
    """Parse every XML file under ``directory`` (sorted by name) into trees.

    ``xml_options`` are forwarded to
    :func:`repro.trees.xml_io.xml_to_tree` (``include_attributes``,
    ``include_text``, ``max_text``).
    """
    root = Path(directory)
    if not root.is_dir():
        raise FileNotFoundError(f"not a directory: {directory}")
    return [
        parse_xml_file(str(path), **xml_options)
        for path in sorted(root.glob(pattern))
    ]
