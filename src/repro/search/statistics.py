"""Search statistics — the paper's evaluation metrics.

The dominant cost of similarity search on trees is the exact edit-distance
computation, so the paper's headline metric is the *percentage of accessed
data*::

    (|True Positive| + |False Positive|) / |Dataset| × 100%

i.e. the fraction of database objects that survive filtering and must be
refined.  CPU time for the filtering and refinement phases is tracked
separately so the "filter overhead is negligible" claim (§5.1) can be
checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.funnel import FilterFunnel

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Metrics of one similarity-query execution."""

    dataset_size: int = 0
    #: objects surviving the filter (= exact distance computations performed)
    candidates: int = 0
    #: objects in the final answer (true positives)
    results: int = 0
    filter_seconds: float = 0.0
    refine_seconds: float = 0.0
    #: the query's :class:`~repro.obs.funnel.FilterFunnel`, populated when
    #: funnel collection or tracing is active (see :mod:`repro.obs.funnel`)
    funnel: "Optional[FilterFunnel]" = None

    @property
    def false_positives(self) -> int:
        """Candidates that the refinement step rejected."""
        return self.candidates - self.results

    @property
    def accessed_percentage(self) -> float:
        """The paper's ``(|TP| + |FP|) / |Dataset| × 100`` metric."""
        if self.dataset_size == 0:
            return 0.0
        return 100.0 * self.candidates / self.dataset_size

    @property
    def result_percentage(self) -> float:
        """``|results| / |Dataset| × 100`` (the plots' "Result %" series)."""
        if self.dataset_size == 0:
            return 0.0
        return 100.0 * self.results / self.dataset_size

    @property
    def total_seconds(self) -> float:
        """Filter plus refinement CPU time."""
        return self.filter_seconds + self.refine_seconds

    def merge(self, other: "SearchStats") -> "SearchStats":
        """Accumulate another query's stats (for averaging over workloads)."""
        return SearchStats(
            dataset_size=self.dataset_size + other.dataset_size,
            candidates=self.candidates + other.candidates,
            results=self.results + other.results,
            filter_seconds=self.filter_seconds + other.filter_seconds,
            refine_seconds=self.refine_seconds + other.refine_seconds,
        )

    def copy(self) -> "SearchStats":
        """An independent copy (cached query results hand these out)."""
        return SearchStats(
            dataset_size=self.dataset_size,
            candidates=self.candidates,
            results=self.results,
            filter_seconds=self.filter_seconds,
            refine_seconds=self.refine_seconds,
            funnel=self.funnel,
        )

    def to_dict(self) -> Dict[str, float]:
        """Flat dictionary for report tables and JSON export.

        The funnel record, when one was collected, rides along under the
        ``"funnel"`` key; without collection the schema is unchanged.
        """
        data = {
            "dataset_size": self.dataset_size,
            "candidates": self.candidates,
            "results": self.results,
            "accessed_pct": self.accessed_percentage,
            "result_pct": self.result_percentage,
            "filter_seconds": self.filter_seconds,
            "refine_seconds": self.refine_seconds,
            "total_seconds": self.total_seconds,
        }
        if self.funnel is not None:
            data["funnel"] = self.funnel.to_dict()
        return data

    #: Backwards-compatible alias of :meth:`to_dict`.
    as_dict = to_dict
