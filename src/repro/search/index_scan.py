"""Index-accelerated range queries over the inverted file (IFI).

The filter scan of :func:`repro.search.range_query.range_query` touches
every database vector.  For range queries the inverted file enables a
sub-linear *candidate generation* step first, exactly like the q-gram
merge-count filters for strings (Ukkonen 1992, Gravano et al. 2001) that
the paper models its embedding on:

    EDist(Tq, Ti) ≤ τ
        ⟹  BDist(Tq, Ti) ≤ 5τ                          (Theorem 3.2)
        ⟹  overlap(Tq, Ti) ≥ (|Tq| + |Ti| − 5τ) / 2

because ``BDist = |Tq| + |Ti| − 2·overlap`` (every node roots exactly one
branch).  The overlap of every database tree with the query is computed by
merging the inverted lists of just the query's branches; trees that never
appear have overlap 0 and are pruned without being touched — only the
postings of branches the query actually contains are read, mirroring how a
text engine evaluates a disjunctive query.

Survivors then pass through the usual positional refinement and the exact
edit distance, so answers remain exact (asserted against the sequential
scan in the tests).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.inverted_file import InvertedFileIndex
from repro.core.positional import (
    PositionalProfile,
    positional_branch_distance,
    positional_profile,
)
from repro.core.qlevel import qlevel_bound_factor
from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import QueryError
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

__all__ = ["candidate_overlaps", "indexed_range_query"]


def candidate_overlaps(
    index: InvertedFileIndex, query: TreeNode
) -> Dict[int, int]:
    """Branch overlap of every *reachable* tree with the query.

    Merges the inverted lists of the query's branches, accumulating
    ``min(count_in_query, count_in_tree)`` per tree id.  Trees sharing no
    branch with the query do not appear in the result.
    """
    profile = positional_profile(query, index.q)
    overlaps: Dict[int, int] = {}
    for branch, positions in profile.pre_positions.items():
        query_count = len(positions)
        for posting in index.postings(branch):
            shared = min(query_count, posting.occurrences)
            overlaps[posting.tree_id] = overlaps.get(posting.tree_id, 0) + shared
    return overlaps


def indexed_range_query(
    trees: Sequence[TreeNode],
    index: InvertedFileIndex,
    query: TreeNode,
    threshold: float,
    counter: Optional[EditDistanceCounter] = None,
    use_positional: bool = True,
    profiles: Optional[Dict[int, "PositionalProfile"]] = None,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """Exact range query driven by the inverted file.

    Three stages: (1) merge-count candidate generation via the overlap
    threshold above; (2) optional positional refutation (Proposition 4.2)
    on the candidates; (3) exact edit distance on the survivors.

    ``trees`` must be the collection indexed by ``index`` (ids = positions).
    Pass ``profiles`` (from ``index.profiles()``) when issuing many queries
    so the positional sequences are extracted once, not per query.

    Returns ``(matches, stats)`` like the linear-scan
    :func:`~repro.search.range_query.range_query`; ``stats.candidates``
    counts stage-3 refinements.
    """
    if threshold < 0:
        raise QueryError(f"range threshold must be >= 0, got {threshold}")
    if index.tree_count != len(trees):
        raise QueryError(
            f"index holds {index.tree_count} trees but the database has "
            f"{len(trees)}"
        )
    if counter is None:
        counter = EditDistanceCounter()
    factor = qlevel_bound_factor(index.q)
    stats = SearchStats(dataset_size=len(trees))

    start = time.perf_counter()
    query_profile = positional_profile(query, index.q)
    query_size = query_profile.tree_size
    overlaps = candidate_overlaps(index, query)
    budget = factor * threshold
    survivors: List[int] = []
    if use_positional and profiles is None:
        profiles = index.profiles()
    pr = int(threshold)
    for tree_id, overlap in overlaps.items():
        tree_size = index.tree_size(tree_id)
        # overlap count filter: BDist = |Tq| + |Ti| - 2·overlap ≤ factor·τ
        if query_size + tree_size - 2 * overlap > budget:
            continue
        if use_positional:
            distance = positional_branch_distance(
                query_profile, profiles[tree_id], pr
            )
            if distance > factor * pr:
                continue
        survivors.append(tree_id)
    # trees sharing no branch at all still pass when the budget allows it
    # (tiny trees against a generous τ): BDist = |Tq| + |Ti| with overlap 0
    if budget >= query_size + 1:  # smallest possible unseen tree has size 1
        for tree_id in range(len(trees)):
            if tree_id in overlaps:
                continue
            if query_size + index.tree_size(tree_id) <= budget:
                survivors.append(tree_id)
    survivors.sort()
    stats.filter_seconds = time.perf_counter() - start

    matches: List[Tuple[int, float]] = []
    start = time.perf_counter()
    for tree_id in survivors:
        distance = counter.distance(query, trees[tree_id])
        if distance <= threshold:
            matches.append((tree_id, distance))
    stats.refine_seconds = time.perf_counter() - start
    stats.candidates = len(survivors)
    stats.results = len(matches)
    return matches, stats
