"""Filter-and-refine similarity search framework.

Range queries, optimal multi-step k-NN (Algorithm 2), similarity joins,
sequential-scan baselines and search statistics.
"""

from repro.search.approximate import approximate_knn_query
from repro.search.database import TreeDatabase
from repro.search.index_join import indexed_similarity_self_join
from repro.search.index_scan import candidate_overlaps, indexed_range_query
from repro.search.io_model import DiskModel, IOEstimate
from repro.search.join import similarity_join, similarity_self_join
from repro.search.knn import knn_query
from repro.search.range_query import range_query
from repro.search.sequential import (
    distance_matrix,
    sequential_knn_query,
    sequential_range_query,
)
from repro.search.statistics import SearchStats
from repro.search.tiered_knn import tiered_knn_query

__all__ = [
    "TreeDatabase",
    "range_query",
    "indexed_range_query",
    "candidate_overlaps",
    "knn_query",
    "tiered_knn_query",
    "approximate_knn_query",
    "sequential_range_query",
    "sequential_knn_query",
    "distance_matrix",
    "similarity_self_join",
    "indexed_similarity_self_join",
    "similarity_join",
    "SearchStats",
    "DiskModel",
    "IOEstimate",
]
