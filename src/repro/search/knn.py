"""k-nearest-neighbor queries via optimal multi-step retrieval (Alg. 2).

The Seidl–Kriegel multi-step strategy the paper adopts:

1. compute the optimistic (lower-bound) distance between the query and every
   database object;
2. process objects in ascending order of that bound, refining each with the
   exact edit distance and maintaining a max-heap of the ``k`` best;
3. stop as soon as the next object's lower bound exceeds the current ``k``-th
   distance — no unseen object can beat it, because its true distance is at
   least its bound.

The number of refined objects is provably minimal for the given bound
(Seidl & Kriegel, SIGMOD 1998), which makes the accessed-data percentage a
pure measure of the filter's tightness — exactly how the paper compares
BiBranch against histogram filtration.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import QueryError
from repro.features.matrix import FeatureMatrices, stable_order
from repro.filters.base import LowerBoundFilter
from repro.obs import tracing
from repro.obs.funnel import FilterFunnel, FunnelStage, active_sink
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

if TYPE_CHECKING:  # import cycle: repro.index builds on the search layer's deps
    from repro.index.base import CandidateIndex

__all__ = ["knn_query"]


def knn_query(
    trees: Sequence[TreeNode],
    query: TreeNode,
    k: int,
    flt: LowerBoundFilter,
    counter: Optional[EditDistanceCounter] = None,
    *,
    matrices: Optional[FeatureMatrices] = None,
    index: Optional["CandidateIndex"] = None,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """The ``k`` database trees closest to ``query`` in edit distance.

    Returns ``(neighbors, stats)`` where ``neighbors`` is a list of
    ``(index, distance)`` sorted by ascending distance (ties broken by
    index).  Distance ties at the ``k``-th position are resolved by keeping
    the first-processed object, like the paper's Algorithm 2 (heap
    replacement only on strictly better keys at capacity).

    With ``matrices``, the ordering pass uses the filter's exact
    vectorized bounds (:meth:`LowerBoundFilter.lower_bounds_matrix`)
    when available — the values are identical to :meth:`bounds`, so the
    optimal-stopping refined-candidate count cannot drift; filters
    without an exact kernel fall back to the per-candidate loop.

    With ``index`` (a :class:`~repro.index.base.CandidateIndex` over the
    same corpus) and a :attr:`~LowerBoundFilter.bdist_dominant` filter at
    the index's q level, the ordering pass is replaced by a lazy
    reordering of the index's ascending-BDist stream
    (:class:`~repro.index.ordering.OrderedBoundStream`): rows are scored
    on demand and emitted in the **exact** reference ``(bound, row)``
    order, so answers and refined counts are bit-identical while the
    number of scored rows shrinks to what optimal stopping actually
    consumes.  Non-dominating filters ignore the index (full ordering
    pass) — dominance is what makes lazy emission sound.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if flt.size != len(trees):
        raise QueryError(
            f"filter indexed {flt.size} trees but the database has {len(trees)}"
        )
    if k > len(trees):
        raise QueryError(f"k={k} exceeds the dataset size {len(trees)}")
    if counter is None:
        counter = EditDistanceCounter()
    stats = SearchStats(dataset_size=len(trees))

    use_index = (
        index is not None
        and flt.bdist_dominant
        and getattr(flt, "q", None) == index.q
    )
    stream = None
    sink = active_sink()
    with tracing.span(
        "search.knn", dataset_size=len(trees), k=k, filter=flt.name
    ) as root:
        start = time.perf_counter()
        if use_index:
            assert index is not None
            with tracing.span(f"index.{index.kind}"):
                index.sync()
                from repro.index.ordering import OrderedBoundStream

                query_signature = flt.signature(query)
                stream = OrderedBoundStream(
                    index,
                    lambda row: flt.bound(
                        query_signature, flt.data_signature(row)
                    ),
                    index.pack(query),
                )
                scan: Iterable[Tuple[float, int]] = stream
        else:
            with tracing.span(f"filter.{flt.name}"):
                vectorized = None
                if matrices is not None:
                    vectorized = flt.lower_bounds_matrix(
                        flt.signature(query), matrices
                    )
                if vectorized is not None:
                    bounds: Sequence[float] = vectorized
                    order = stable_order(vectorized)
                else:
                    bounds = flt.bounds(query)
                    order = sorted(
                        range(len(trees)),
                        key=lambda row: (bounds[row], row),
                    )
                scan = ((bounds[row], row) for row in order)
        stats.filter_seconds = time.perf_counter() - start

        # max-heap of (−distance, −index) so the worst current neighbor is on top
        heap: List[Tuple[float, int]] = []
        start = time.perf_counter()
        refined = 0
        with tracing.span("search.refine") as refine_span:
            for bound_value, row in scan:
                if len(heap) == k and bound_value > -heap[0][0]:
                    break  # optimal stopping: no unseen object can improve the result
                distance = counter.distance(query, trees[row])
                refined += 1
                if len(heap) < k:
                    heapq.heappush(heap, (-distance, -row))
                elif distance < -heap[0][0]:
                    heapq.heapreplace(heap, (-distance, -row))
            refine_span.set(refined=refined, results=len(heap))
        stats.refine_seconds = time.perf_counter() - start
        stats.candidates = refined
        stats.results = len(heap)
        root.set(candidates=refined, results=len(heap))

    if sink is not None or tracing.enabled():
        # the ordering pass bounds every object but prunes none; pruning
        # happens implicitly through the optimal-stopping refinement.
        # On the index path only `stream.scored` rows were ever bounded —
        # the stage survivors record that laziness win.
        if stream is not None:
            assert index is not None
            order_stage = FunnelStage(
                f"index:{index.kind}",
                len(trees),
                stream.scored,
                stats.filter_seconds,
            )
        else:
            order_stage = FunnelStage(
                f"order:{flt.name}",
                len(trees),
                len(trees),
                stats.filter_seconds,
            )
        stats.funnel = FilterFunnel(
            kind="knn",
            corpus_size=len(trees),
            stages=[order_stage],
            refined=refined,
            results=len(heap),
            refine_seconds=stats.refine_seconds,
            parameter=float(k),
        )
        if sink is not None:
            sink.add(stats.funnel)

    neighbors = sorted(
        ((-neg_index, -neg_distance) for neg_distance, neg_index in heap),
        key=lambda pair: (pair[1], pair[0]),
    )
    return neighbors, stats
