"""k-nearest-neighbor queries via optimal multi-step retrieval (Alg. 2).

The Seidl–Kriegel multi-step strategy the paper adopts:

1. compute the optimistic (lower-bound) distance between the query and every
   database object;
2. process objects in ascending order of that bound, refining each with the
   exact edit distance and maintaining a max-heap of the ``k`` best;
3. stop as soon as the next object's lower bound exceeds the current ``k``-th
   distance — no unseen object can beat it, because its true distance is at
   least its bound.

The number of refined objects is provably minimal for the given bound
(Seidl & Kriegel, SIGMOD 1998), which makes the accessed-data percentage a
pure measure of the filter's tightness — exactly how the paper compares
BiBranch against histogram filtration.
"""

from __future__ import annotations

import heapq
import time
from typing import List, Optional, Sequence, Tuple

from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import QueryError
from repro.features.matrix import FeatureMatrices, stable_order
from repro.filters.base import LowerBoundFilter
from repro.obs import tracing
from repro.obs.funnel import FilterFunnel, FunnelStage, active_sink
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

__all__ = ["knn_query"]


def knn_query(
    trees: Sequence[TreeNode],
    query: TreeNode,
    k: int,
    flt: LowerBoundFilter,
    counter: Optional[EditDistanceCounter] = None,
    *,
    matrices: Optional[FeatureMatrices] = None,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """The ``k`` database trees closest to ``query`` in edit distance.

    Returns ``(neighbors, stats)`` where ``neighbors`` is a list of
    ``(index, distance)`` sorted by ascending distance (ties broken by
    index).  Distance ties at the ``k``-th position are resolved by keeping
    the first-processed object, like the paper's Algorithm 2 (heap
    replacement only on strictly better keys at capacity).

    With ``matrices``, the ordering pass uses the filter's exact
    vectorized bounds (:meth:`LowerBoundFilter.lower_bounds_matrix`)
    when available — the values are identical to :meth:`bounds`, so the
    optimal-stopping refined-candidate count cannot drift; filters
    without an exact kernel fall back to the per-candidate loop.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if flt.size != len(trees):
        raise QueryError(
            f"filter indexed {flt.size} trees but the database has {len(trees)}"
        )
    if k > len(trees):
        raise QueryError(f"k={k} exceeds the dataset size {len(trees)}")
    if counter is None:
        counter = EditDistanceCounter()
    stats = SearchStats(dataset_size=len(trees))

    sink = active_sink()
    with tracing.span(
        "search.knn", dataset_size=len(trees), k=k, filter=flt.name
    ) as root:
        start = time.perf_counter()
        with tracing.span(f"filter.{flt.name}"):
            vectorized = None
            if matrices is not None:
                vectorized = flt.lower_bounds_matrix(
                    flt.signature(query), matrices
                )
            if vectorized is not None:
                bounds: Sequence[float] = vectorized
                order = stable_order(vectorized)
            else:
                bounds = flt.bounds(query)
                order = sorted(
                    range(len(trees)), key=lambda index: (bounds[index], index)
                )
        stats.filter_seconds = time.perf_counter() - start

        # max-heap of (−distance, −index) so the worst current neighbor is on top
        heap: List[Tuple[float, int]] = []
        start = time.perf_counter()
        refined = 0
        with tracing.span("search.refine") as refine_span:
            for index in order:
                if len(heap) == k and bounds[index] > -heap[0][0]:
                    break  # optimal stopping: no unseen object can improve the result
                distance = counter.distance(query, trees[index])
                refined += 1
                if len(heap) < k:
                    heapq.heappush(heap, (-distance, -index))
                elif distance < -heap[0][0]:
                    heapq.heapreplace(heap, (-distance, -index))
            refine_span.set(refined=refined, results=len(heap))
        stats.refine_seconds = time.perf_counter() - start
        stats.candidates = refined
        stats.results = len(heap)
        root.set(candidates=refined, results=len(heap))

    if sink is not None or tracing.enabled():
        # the ordering pass bounds every object but prunes none; pruning
        # happens implicitly through the optimal-stopping refinement
        stats.funnel = FilterFunnel(
            kind="knn",
            corpus_size=len(trees),
            stages=[
                FunnelStage(
                    f"order:{flt.name}",
                    len(trees),
                    len(trees),
                    stats.filter_seconds,
                )
            ],
            refined=refined,
            results=len(heap),
            refine_seconds=stats.refine_seconds,
            parameter=float(k),
        )
        if sink is not None:
            sink.add(stats.funnel)

    neighbors = sorted(
        ((-neg_index, -neg_distance) for neg_distance, neg_index in heap),
        key=lambda pair: (pair[1], pair[0]),
    )
    return neighbors, stats
