"""TreeDatabase — the user-facing entry point for similarity search.

Bundles a tree collection, a lower-bound filter (BiBranch by default), the
inverted file index, and a shared edit-distance counter so prepared trees
are reused across queries.

Examples
--------
>>> from repro.trees import parse_bracket
>>> db = TreeDatabase([parse_bracket("a(b,c)"), parse_bracket("a(b,d)"),
...                    parse_bracket("x(y)")])
>>> matches, _ = db.range_query(parse_bracket("a(b,c)"), 1)
>>> [index for index, _ in matches]
[0, 1]
>>> neighbors, _ = db.knn(parse_bracket("a(b,c)"), k=1)
>>> neighbors[0]
(0, 0.0)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple

from repro.core.inverted_file import InvertedFileIndex
from repro.editdist.costs import UNIT_COSTS, CostModel
from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import InvalidParameterError
from repro.features.store import FeatureStore
from repro.filters.base import LowerBoundFilter
from repro.filters.binary_branch import BinaryBranchFilter
from repro.search.knn import knn_query
from repro.search.range_query import range_query
from repro.search.sequential import sequential_knn_query, sequential_range_query
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.features.matrix import FeatureMatrices
    from repro.index.base import CandidateIndex

__all__ = ["TreeDatabase"]


class TreeDatabase:
    """A searchable collection of rooted ordered labeled trees.

    Parameters
    ----------
    trees:
        The database content (kept by reference; do not mutate afterwards).
    flt:
        The lower-bound filter; default is the paper's positional
        :class:`~repro.filters.binary_branch.BinaryBranchFilter`.  It is
        fitted here if not already fitted — from the shared feature plane
        when the filter supports it, so all signatures come out of one
        extraction pass per tree.
    costs:
        Edit-operation cost model for the refinement distance.
    build_index:
        Also build the :class:`InvertedFileIndex` (Algorithm 1); needed by
        :meth:`inverted_index` and the join algorithm.
    feature_store:
        A prebuilt :class:`~repro.features.store.FeatureStore` covering
        exactly ``trees`` (e.g. restored from disk by
        :func:`repro.storage.load_database`).  When given, fitting the
        filter performs **no** tree traversals.
    """

    def __init__(
        self,
        trees: Iterable[TreeNode],
        flt: Optional[LowerBoundFilter] = None,
        costs: CostModel = UNIT_COSTS,
        build_index: bool = False,
        feature_store: Optional[FeatureStore] = None,
    ) -> None:
        self.trees: List[TreeNode] = list(trees)
        self.counter = EditDistanceCounter(costs)
        self.filter: LowerBoundFilter = flt if flt is not None else BinaryBranchFilter()
        self._features: Optional[FeatureStore] = None
        if feature_store is not None:
            if len(feature_store) != len(self.trees):
                raise InvalidParameterError(
                    f"feature store covers {len(feature_store)} trees, "
                    f"database has {len(self.trees)}"
                )
            self._features = feature_store
        if self.filter.size != len(self.trees):
            self._fit_filter()
        self._mutations = 0
        self._index: Optional[InvertedFileIndex] = None
        self._profiles = None
        self._candidate_indexes: dict = {}
        if build_index:
            self._build_index()

    def _store_q_levels(self) -> Tuple[int, ...]:
        return self.filter.required_q_levels() or (getattr(self.filter, "q", 2),)

    def _store_usable(self) -> bool:
        """Whether the filter can be served from the feature plane."""
        if not self.filter.supports_store:
            return False
        if self._features is None:
            return True  # a compatible store can still be built
        return all(q in self._features.q_levels for q in self._store_q_levels())

    def _fit_filter(self) -> None:
        if self._store_usable():
            if self._features is None:
                self._features = FeatureStore(self._store_q_levels()).fit(self.trees)
            self.filter.fit_from_store(self._features)
        else:
            self.filter.fit(self.trees)

    def _build_index(self) -> None:
        q = getattr(self.filter, "q", 2)
        index = InvertedFileIndex(q=q)
        index.add_trees(self.trees)
        self._index = index

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, tree: TreeNode) -> int:
        """Insert one tree; returns its index.

        One extraction pass updates the feature plane (O(|tree|)), the
        filter signature is derived from it (or computed directly for
        store-less filters), the inverted index — if already built — is
        extended in place, and cached positional profiles are invalidated.
        """
        index = len(self.trees)
        self.trees.append(tree)
        if self._features is not None and self._store_usable():
            self._features.add(tree)
            self.filter.add_from_store(self._features, index)
        else:
            if self._features is not None:
                self._features.add(tree)
            self.filter.add(tree)
        if self._index is not None:
            self._index.add_tree(index, tree)
        self._mutations += 1
        self._profiles = None
        return index

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.trees)

    def __getitem__(self, index: int) -> TreeNode:
        return self.trees[index]

    @property
    def features(self) -> Optional[FeatureStore]:
        """The shared feature plane, if one backs this database."""
        return self._features

    def matrices(self) -> Optional["FeatureMatrices"]:
        """Corpus-level matrix planes for vectorized candidate generation.

        ``None`` when no feature store backs this database (prefitted
        store-less filters) — callers then stay on the per-candidate
        reference path.  The bundle re-syncs itself against the store, so
        it remains valid across :meth:`add`.
        """
        if self._features is None:
            return None
        return self._features.matrices()

    @property
    def generation(self) -> int:
        """Mutation counter for cache-freshness decisions.

        Backed by the feature store's generation when one exists (so
        out-of-band ``store.add`` calls are visible too), otherwise by a
        local per-:meth:`add` counter.
        """
        if self._features is not None:
            return self._features.generation
        return self._mutations

    def candidate_index(self, kind: str) -> "CandidateIndex":
        """The sublinear candidate index of the given kind (built lazily).

        Requires a feature store (indexes read packed vectors from the
        plane); built once per kind and cached.  The index stays usable
        across :meth:`add` — the query paths re-sync it against the store
        before every probe.
        """
        index = self._candidate_indexes.get(kind)
        if index is None:
            if self._features is None:
                raise InvalidParameterError(
                    f"candidate index {kind!r} needs a feature store; this "
                    "database was built from a prefitted store-less filter"
                )
            from repro.index import build_candidate_index

            q = getattr(self.filter, "q", None)
            if q is not None and q not in self._features.q_levels:
                q = None  # index at the store's default level instead
            index = build_candidate_index(kind, self._features, q)
            self._candidate_indexes[kind] = index
        return index

    @property
    def inverted_index(self) -> InvertedFileIndex:
        """The inverted file index (built lazily on first access)."""
        if self._index is None:
            self._build_index()
        assert self._index is not None
        return self._index

    @property
    def distance_computations(self) -> int:
        """Exact edit-distance computations performed so far."""
        return self.counter.calls

    def edit_distance(self, t1: TreeNode, t2: TreeNode) -> float:
        """Exact edit distance under the database's cost model."""
        return self.counter.distance(t1, t2)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(
        self, query: TreeNode, threshold: float
    ) -> Tuple[List[Tuple[int, float]], SearchStats]:
        """Filter-and-refine range query (see :func:`range_query`)."""
        return range_query(self.trees, query, threshold, self.filter, self.counter)

    def indexed_range_query(
        self, query: TreeNode, threshold: float
    ) -> Tuple[List[Tuple[int, float]], SearchStats]:
        """Range query via inverted-file candidate generation.

        Uses the :class:`InvertedFileIndex` (built lazily) to read only the
        postings of the query's own branches; see
        :func:`repro.search.index_scan.indexed_range_query`.
        """
        from repro.search.index_scan import indexed_range_query

        index = self.inverted_index
        if self._profiles is None:
            self._profiles = index.profiles()
        return indexed_range_query(
            self.trees, index, query, threshold, self.counter,
            profiles=self._profiles,
        )

    def knn(
        self, query: TreeNode, k: int
    ) -> Tuple[List[Tuple[int, float]], SearchStats]:
        """Filter-and-refine k-NN query (Algorithm 2)."""
        return knn_query(self.trees, query, k, self.filter, self.counter)

    def sequential_range_query(
        self, query: TreeNode, threshold: float
    ) -> Tuple[List[Tuple[int, float]], SearchStats]:
        """Brute-force range query (baseline / ground truth)."""
        return sequential_range_query(self.trees, query, threshold, self.counter)

    def sequential_knn(
        self, query: TreeNode, k: int
    ) -> Tuple[List[Tuple[int, float]], SearchStats]:
        """Brute-force k-NN (baseline / ground truth)."""
        return sequential_knn_query(self.trees, query, k, self.counter)

    def __repr__(self) -> str:
        return (
            f"TreeDatabase({len(self.trees)} trees, "
            f"filter={self.filter.name!r})"
        )
