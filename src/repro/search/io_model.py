"""A simple disk-I/O cost model for filter-and-refine queries.

The paper argues its pruning power "leads to CPU and I/O efficient
solutions" (§6) but, like us, measures CPU only.  This module makes the
I/O claim quantifiable with the standard textbook model:

* the *filter step* scans the vector/signature file **sequentially** —
  signatures are small (O(|T|) integers each) and densely packed;
* the *refinement step* fetches each surviving tree **randomly** — trees
  live in a separate data file, one seek per candidate.

With a page holding many signatures but random reads costing a seek, the
model reproduces the paper's qualitative point: refinement I/O dominates,
so the accessed-data percentage is also the I/O percentage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

__all__ = ["DiskModel", "IOEstimate"]


@dataclass(frozen=True)
class IOEstimate:
    """Estimated I/O work of one query."""

    sequential_pages: int
    random_reads: int
    #: model cost in sequential-page units (a random read costs
    #: ``seek_penalty`` sequential pages)
    cost_units: float

    def __str__(self) -> str:
        return (
            f"{self.sequential_pages} sequential pages + "
            f"{self.random_reads} random reads "
            f"(= {self.cost_units:g} page units)"
        )


@dataclass(frozen=True)
class DiskModel:
    """Page-based I/O model.

    Parameters
    ----------
    page_bytes:
        Disk page size (default 8 KiB).
    bytes_per_node:
        Storage per tree node in either file: a signature entry (branch id
        + count + two positions) and a serialized node both land in the
        tens of bytes; one knob keeps the model honest and simple.
    seek_penalty:
        How many sequential page transfers one random read costs
        (classic rule of thumb: ~100).
    """

    page_bytes: int = 8192
    bytes_per_node: int = 24
    seek_penalty: float = 100.0

    def pages_for(self, total_nodes: int) -> int:
        """Pages needed to store ``total_nodes`` worth of data."""
        total = total_nodes * self.bytes_per_node
        return max(1, -(-total // self.page_bytes))

    def estimate(
        self, trees: Sequence[TreeNode], stats: SearchStats
    ) -> IOEstimate:
        """I/O estimate for a query that produced ``stats`` over ``trees``.

        Sequential part: one scan of the signature file.  Random part: one
        read per refined candidate (``stats.candidates``).
        """
        total_nodes = sum(tree.size for tree in trees)
        sequential = self.pages_for(total_nodes)
        random_reads = stats.candidates
        cost = sequential + random_reads * self.seek_penalty
        return IOEstimate(sequential, random_reads, cost)

    def sequential_scan_estimate(self, trees: Sequence[TreeNode]) -> IOEstimate:
        """Baseline: read the whole tree file sequentially (no filter)."""
        total_nodes = sum(tree.size for tree in trees)
        pages = self.pages_for(total_nodes)
        return IOEstimate(pages, 0, float(pages))
