"""Tiered k-NN: cheap bound for ordering, tight bound on demand.

Algorithm 2 computes the positional ``SearchLBound`` against *every*
database object up front.  The positional search costs several linear-time
``PosBDist`` evaluations per pair, which on small trees approaches the cost
of the exact distance itself (see ``benchmarks/results/*/fig13*``).

This variant applies the classic multi-tier refinement idea on top of the
same optimal multi-step skeleton:

1. order all objects by the *cheap* count bound ``⌈BDist/factor⌉`` (one
   linear pass per object, no binary search);
2. scan in that order with the usual optimal stopping rule — valid because
   the cheap bound is itself a lower bound;
3. before paying for an exact distance, tighten the candidate with the
   positional bound; if that already exceeds the current k-th distance the
   candidate is *skipped* (but the scan continues — skipping is per-object,
   stopping is governed by the ordering bound).

Results are exactly those of the plain algorithm (same distances; asserted
in the tests); only the work distribution changes: positional searches run
for the objects the cheap bound cannot decide, instead of for all.  Whether
that is a net win depends on how much tighter the positional bound is than
the count bound on the workload — on the paper's clustered datasets the
two are close and the trade is roughly a wash (measured in the tests), so
the plain Algorithm 2 remains the default; this variant exists for
workloads with expensive signatures and as a documented design ablation.
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

from repro.core.positional import PositionalProfile, search_lower_bound
from repro.core.qlevel import qlevel_bound_factor
from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import InvalidParameterError, QueryError
from repro.features.matrix import (
    FeatureMatrices,
    branch_l1_counts,
    ceil_div,
    stable_order,
)
from repro.filters.binary_branch import BinaryBranchFilter
from repro.obs import tracing
from repro.obs.funnel import FilterFunnel, FunnelStage, active_sink
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

if TYPE_CHECKING:  # import cycle: repro.index builds on the search layer's deps
    from repro.index.base import CandidateIndex

__all__ = ["tiered_knn_query"]


def _count_bound(query: PositionalProfile, data: PositionalProfile, factor: int) -> float:
    distance = 0
    mine, theirs = query.pre_positions, data.pre_positions
    for key, positions in mine.items():
        other = theirs.get(key)
        distance += abs(len(positions) - (0 if other is None else len(other)))
    for key, positions in theirs.items():
        if key not in mine:
            distance += len(positions)
    return -(-distance // factor)


def tiered_knn_query(
    trees: Sequence[TreeNode],
    query: TreeNode,
    k: int,
    flt: BinaryBranchFilter,
    counter: Optional[EditDistanceCounter] = None,
    *,
    matrices: Optional[FeatureMatrices] = None,
    index: Optional["CandidateIndex"] = None,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """k-NN with count-bound ordering and lazy positional tightening.

    ``flt`` must be a fitted :class:`BinaryBranchFilter` (its positional
    profiles serve both tiers).  Returns the same answer as
    :func:`repro.search.knn.knn_query` with that filter.

    With ``matrices``, the cheap ordering tier runs as one matrix pass:
    ``_count_bound`` is exactly ``⌈L1(branch counts)/factor⌉`` (each node
    contributes one branch, and counts are the lengths of the positional
    lists), so the vectorized values — and hence the scan order, stopping
    point and refined count — are identical to the loop's.

    With ``index`` (a candidate index at ``flt.q``), the cheap tier
    consumes the index's ascending-BDist stream lazily instead
    (:class:`~repro.index.ordering.AscendingCountBounds`): the ordering
    values *are* the count bound, so the scan sequence is the reference
    one exactly and only the rows optimal stopping reaches are scored.
    An index at a different q level is ignored.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if flt.size != len(trees):
        raise QueryError(
            f"filter indexed {flt.size} trees but the database has {len(trees)}"
        )
    if k > len(trees):
        raise QueryError(f"k={k} exceeds the dataset size {len(trees)}")
    if counter is None:
        counter = EditDistanceCounter()
    factor = qlevel_bound_factor(flt.q)
    stats = SearchStats(dataset_size=len(trees))

    use_index = index is not None and index.q == flt.q
    stream = None
    sink = active_sink()
    with tracing.span(
        "search.tiered_knn", dataset_size=len(trees), k=k, q=flt.q
    ) as root:
        start = time.perf_counter()
        if use_index:
            assert index is not None
            with tracing.span(f"index.{index.kind}"):
                index.sync()
                from repro.index.ordering import AscendingCountBounds

                query_signature = flt.signature(query)
                stream = AscendingCountBounds(index, index.pack(query))
                scan: Iterable[Tuple[float, int]] = stream
        else:
            with tracing.span("filter.count-bound"):
                query_signature = flt.signature(query)
                vectorized: Optional[Sequence[float]] = None
                if matrices is not None:
                    try:
                        counts = {
                            branch: len(positions)
                            for branch, positions in (
                                query_signature.pre_positions.items()
                            )
                        }
                        vectorized = ceil_div(
                            branch_l1_counts(matrices, flt.q, counts, None),
                            factor,
                        )
                    except InvalidParameterError:
                        vectorized = None
                if vectorized is not None:
                    cheap: Sequence[float] = vectorized
                    order = stable_order(vectorized)
                else:
                    cheap = [
                        _count_bound(query_signature, flt.data_signature(row), factor)
                        for row in range(len(trees))
                    ]
                    order = sorted(
                        range(len(trees)), key=lambda row: (cheap[row], row)
                    )
                scan = ((cheap[row], row) for row in order)
        stats.filter_seconds = time.perf_counter() - start

        heap: List[Tuple[float, int]] = []  # (-distance, -index) max-heap
        refined = 0
        tight_evaluations = 0
        tight_skips = 0
        start = time.perf_counter()
        with tracing.span("search.refine") as refine_span:
            for cheap_value, row in scan:
                if len(heap) == k and cheap_value > -heap[0][0]:
                    break  # optimal stopping on the ordering bound
                if len(heap) == k:
                    tight_evaluations += 1
                    tight = search_lower_bound(
                        query_signature, flt.data_signature(row)
                    )
                    if tight > -heap[0][0]:
                        tight_skips += 1
                        continue  # skip this object; the scan goes on
                distance = counter.distance(query, trees[row])
                refined += 1
                if len(heap) < k:
                    heapq.heappush(heap, (-distance, -row))
                elif distance < -heap[0][0]:
                    heapq.heapreplace(heap, (-distance, -row))
            refine_span.set(
                refined=refined,
                tight_evaluations=tight_evaluations,
                tight_skips=tight_skips,
            )
        stats.refine_seconds = time.perf_counter() - start
        stats.candidates = refined
        stats.results = len(heap)
        root.set(candidates=refined, results=len(heap))

    if sink is not None or tracing.enabled():
        if stream is not None:
            assert index is not None
            ordered = stream.scored
            order_stage = FunnelStage(
                f"index:{index.kind}", len(trees), ordered, stats.filter_seconds
            )
        else:
            ordered = len(trees)
            order_stage = FunnelStage(
                "order:count-bound", len(trees), ordered, stats.filter_seconds
            )
        stats.funnel = FilterFunnel(
            kind="tiered_knn",
            corpus_size=len(trees),
            stages=[
                order_stage,
                FunnelStage(
                    "tighten:positional",
                    ordered,
                    ordered - tight_skips,
                    0.0,
                ),
            ],
            refined=refined,
            results=len(heap),
            refine_seconds=stats.refine_seconds,
            parameter=float(k),
        )
        if sink is not None:
            sink.add(stats.funnel)

    neighbors = sorted(
        ((-neg_index, -neg_distance) for neg_distance, neg_index in heap),
        key=lambda pair: (pair[1], pair[0]),
    )
    return neighbors, stats
