"""Range queries via filter-and-refine (§4.3).

A range query returns every database tree within edit distance ``τ`` of the
query.  Filtering discards objects whose lower bound already exceeds ``τ``
(safe: the true distance can only be larger); the survivors are refined with
the exact Zhang–Shasha distance.  Completeness is guaranteed by the
lower-bound property — there are no false negatives by construction, which
the integration tests verify against a sequential scan.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import QueryError
from repro.features.matrix import FeatureMatrices, as_indices
from repro.filters.base import LowerBoundFilter
from repro.obs import tracing
from repro.obs.funnel import FilterFunnel, FunnelStage, active_sink
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

if TYPE_CHECKING:  # import cycle: repro.index builds on the search layer's deps
    from repro.index.base import CandidateIndex

__all__ = ["range_query"]


def range_query(
    trees: Sequence[TreeNode],
    query: TreeNode,
    threshold: float,
    flt: LowerBoundFilter,
    counter: Optional[EditDistanceCounter] = None,
    *,
    matrices: Optional[FeatureMatrices] = None,
    index: Optional["CandidateIndex"] = None,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """All trees with ``EDist(query, tree) ≤ threshold``.

    Parameters
    ----------
    trees:
        The database; must be the collection ``flt`` was fitted on.
    query:
        The query tree ``Tq``.
    threshold:
        The range ``τ`` (≥ 0).
    flt:
        A fitted lower-bound filter.
    counter:
        Optional shared :class:`EditDistanceCounter` (reuses prepared trees
        across queries and accumulates the distance-computation count).
    matrices:
        Optional corpus-level matrix planes over the same trees.  When
        given, the filter cascade runs vectorized (each funnel stage maps
        the active-row set to its survivors via matrix kernels) instead
        of per candidate — same survivor set, same stage names, same
        funnel invariants; the loop below stays the reference
        implementation.
    index:
        Optional :class:`~repro.index.base.CandidateIndex` over the same
        corpus.  When given, candidate generation starts from the exact
        BDist ball ``{row : BDist ≤ factor·τ}`` (one sublinear index
        probe, reported as a leading ``index:<kind>`` funnel stage) and
        the filter cascade runs over the ball only.  Answers are
        unchanged for *any* filter: a row outside the ball has
        ``EDist > τ`` by Theorem 3.2, so restricting the cascade to the
        ball removes only rows refinement would reject — pinned by the
        ``search:index-completeness`` oracle.

    Returns
    -------
    (matches, stats):
        ``matches`` — ``(index, distance)`` pairs in index order;
        ``stats`` — filtering/refinement metrics for this query.
    """
    if threshold < 0:
        raise QueryError(f"range threshold must be >= 0, got {threshold}")
    if flt.size != len(trees):
        raise QueryError(
            f"filter indexed {flt.size} trees but the database has {len(trees)}"
        )
    if counter is None:
        counter = EditDistanceCounter()
    stats = SearchStats(dataset_size=len(trees))

    sink = active_sink()
    observing = sink is not None or tracing.enabled()
    with tracing.span(
        "search.range", dataset_size=len(trees), threshold=threshold,
        filter=flt.name,
    ) as root:
        stages: List[FunnelStage] = []
        start = time.perf_counter()
        domain: Sequence[int] = range(len(trees))
        if index is not None:
            index.sync()
            with tracing.span(
                f"index.{index.kind}", budget=index.factor * threshold
            ) as index_span:
                stage_start = time.perf_counter()
                domain = index.range_rows(
                    index.pack(query), index.factor * threshold
                )
                stage_seconds = time.perf_counter() - stage_start
                index_span.set(
                    entered=len(trees),
                    survivors=len(domain),
                    examined=index.last_examined,
                )
            if observing:
                stages.append(
                    FunnelStage(
                        f"index:{index.kind}",
                        len(trees),
                        len(domain),
                        stage_seconds,
                    )
                )
        with tracing.span("search.filter"):
            query_signature = flt.signature(query)
            if matrices is not None:
                rows: Sequence[int] = domain
                if not observing:
                    for _, refute_rows in flt.matrix_funnel_components():
                        rows = refute_rows(
                            query_signature, threshold, rows, matrices
                        )
                else:
                    for name, refute_rows in flt.matrix_funnel_components():
                        with tracing.span(f"filter.{name}") as stage_span:
                            entered = len(rows)
                            stage_start = time.perf_counter()
                            rows = refute_rows(
                                query_signature, threshold, rows, matrices
                            )
                            stage_seconds = time.perf_counter() - stage_start
                            stages.append(
                                FunnelStage(
                                    name, entered, len(rows), stage_seconds
                                )
                            )
                            stage_span.set(
                                entered=entered,
                                survivors=len(rows),
                                refuted=entered - len(rows),
                            )
                survivors = as_indices(rows)
            elif not observing:
                survivors = [
                    row
                    for row in domain
                    if not flt.refutes(
                        query_signature, flt.data_signature(row), threshold
                    )
                ]
            else:
                # staged cascade: same survivor set as the one-pass
                # `refutes` (refutation is an `any` over the stages), but
                # pruning is attributed to the stage that did it
                survivors = list(domain)
                for name, refute in flt.funnel_components():
                    with tracing.span(f"filter.{name}") as stage_span:
                        entered = len(survivors)
                        stage_start = time.perf_counter()
                        survivors = [
                            index
                            for index in survivors
                            if not refute(
                                query_signature,
                                flt.data_signature(index),
                                threshold,
                            )
                        ]
                        stage_seconds = time.perf_counter() - stage_start
                        stages.append(
                            FunnelStage(name, entered, len(survivors), stage_seconds)
                        )
                        stage_span.set(
                            entered=entered,
                            survivors=len(survivors),
                            refuted=entered - len(survivors),
                        )
        stats.filter_seconds = time.perf_counter() - start

        matches: List[Tuple[int, float]] = []
        start = time.perf_counter()
        with tracing.span("search.refine", candidates=len(survivors)) as refine_span:
            for row in survivors:
                distance = counter.distance(query, trees[row])
                if distance <= threshold:
                    matches.append((row, distance))
            refine_span.set(results=len(matches))
        stats.refine_seconds = time.perf_counter() - start
        stats.candidates = len(survivors)
        stats.results = len(matches)
        root.set(candidates=len(survivors), results=len(matches))

    if observing:
        stats.funnel = FilterFunnel(
            kind="range",
            corpus_size=len(trees),
            stages=stages,
            refined=len(survivors),
            results=len(matches),
            refine_seconds=stats.refine_seconds,
            parameter=threshold,
        )
        if sink is not None:
            sink.add(stats.funnel)
    return matches, stats
