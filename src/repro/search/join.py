"""Approximate (similarity) joins — one of the §1 motivating operations.

A similarity self-join reports every pair of database trees within edit
distance ``τ``; the cross-join variant pairs two collections.  Both use the
same filter-and-refine pattern as the point queries: the quadratic number of
*filter* evaluations is cheap (linear each), while the expensive exact
distance only runs on surviving pairs.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import QueryError
from repro.filters.base import LowerBoundFilter
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

__all__ = ["similarity_self_join", "similarity_join"]


def similarity_self_join(
    trees: Sequence[TreeNode],
    threshold: float,
    flt: LowerBoundFilter,
    counter: Optional[EditDistanceCounter] = None,
) -> Tuple[List[Tuple[int, int, float]], SearchStats]:
    """All pairs ``i < j`` with ``EDist(trees[i], trees[j]) ≤ threshold``.

    Returns ``(pairs, stats)``; ``stats.dataset_size`` counts candidate
    *pairs* (``n·(n−1)/2``).
    """
    if threshold < 0:
        raise QueryError(f"join threshold must be >= 0, got {threshold}")
    if flt.size != len(trees):
        raise QueryError("filter must be fitted on the joined collection")
    if counter is None:
        counter = EditDistanceCounter()
    size = len(trees)
    stats = SearchStats(dataset_size=size * (size - 1) // 2)

    start = time.perf_counter()
    survivors = [
        (i, j)
        for i in range(size)
        for j in range(i + 1, size)
        if not flt.refutes(flt.data_signature(i), flt.data_signature(j), threshold)
    ]
    stats.filter_seconds = time.perf_counter() - start

    pairs: List[Tuple[int, int, float]] = []
    start = time.perf_counter()
    for i, j in survivors:
        distance = counter.distance(trees[i], trees[j])
        if distance <= threshold:
            pairs.append((i, j, distance))
    stats.refine_seconds = time.perf_counter() - start
    stats.candidates = len(survivors)
    stats.results = len(pairs)
    return pairs, stats


def similarity_join(
    left: Sequence[TreeNode],
    right: Sequence[TreeNode],
    threshold: float,
    flt_left: LowerBoundFilter,
    flt_right: LowerBoundFilter,
    counter: Optional[EditDistanceCounter] = None,
) -> Tuple[List[Tuple[int, int, float]], SearchStats]:
    """All cross pairs within ``threshold`` between two collections.

    ``flt_left``/``flt_right`` must be the *same filter type* fitted on the
    respective collections (their signatures must be comparable).
    """
    if threshold < 0:
        raise QueryError(f"join threshold must be >= 0, got {threshold}")
    if flt_left.size != len(left) or flt_right.size != len(right):
        raise QueryError("filters must be fitted on the joined collections")
    if type(flt_left) is not type(flt_right):
        raise QueryError("join filters must be of the same type")
    if counter is None:
        counter = EditDistanceCounter()
    stats = SearchStats(dataset_size=len(left) * len(right))

    start = time.perf_counter()
    survivors = [
        (i, j)
        for i in range(len(left))
        for j in range(len(right))
        if not flt_left.refutes(
            flt_left.data_signature(i), flt_right.data_signature(j), threshold
        )
    ]
    stats.filter_seconds = time.perf_counter() - start

    pairs: List[Tuple[int, int, float]] = []
    start = time.perf_counter()
    for i, j in survivors:
        distance = counter.distance(left[i], right[j])
        if distance <= threshold:
            pairs.append((i, j, distance))
    stats.refine_seconds = time.perf_counter() - start
    stats.candidates = len(survivors)
    stats.results = len(pairs)
    return pairs, stats
