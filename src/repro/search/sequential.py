"""Sequential-scan baselines (no filtering).

The paper's CPU-time comparison line: every query computes the exact edit
distance against every database object.  These implementations are also the
ground truth the integration tests compare the filtered algorithms against.

There is deliberately no ``matrices`` parameter here: a sequential scan has
no filter stage to vectorize — every object is refined exactly — so these
baselines are identical under either ``candidate_source`` and stay the
fixed reference the vectorized cascade is ultimately validated against.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.exceptions import QueryError
from repro.obs import tracing
from repro.obs.funnel import FilterFunnel, active_sink
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

__all__ = ["sequential_range_query", "sequential_knn_query", "distance_matrix"]


def _record_funnel(stats: SearchStats, kind: str, parameter: float) -> None:
    """Attach a stage-less funnel (sequential scans refine everything)."""
    sink = active_sink()
    if sink is None and not tracing.enabled():
        return
    stats.funnel = FilterFunnel(
        kind=kind,
        corpus_size=stats.dataset_size,
        stages=[],
        refined=stats.candidates,
        results=stats.results,
        refine_seconds=stats.refine_seconds,
        parameter=parameter,
    )
    if sink is not None:
        sink.add(stats.funnel)


def sequential_range_query(
    trees: Sequence[TreeNode],
    query: TreeNode,
    threshold: float,
    counter: Optional[EditDistanceCounter] = None,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """Range query by brute force: refine every object."""
    if threshold < 0:
        raise QueryError(f"range threshold must be >= 0, got {threshold}")
    if counter is None:
        counter = EditDistanceCounter()
    stats = SearchStats(dataset_size=len(trees), candidates=len(trees))
    start = time.perf_counter()
    with tracing.span(
        "search.sequential_range", dataset_size=len(trees), threshold=threshold
    ) as root:
        matches = []
        for index, tree in enumerate(trees):
            distance = counter.distance(query, tree)
            if distance <= threshold:
                matches.append((index, distance))
        root.set(results=len(matches))
    stats.refine_seconds = time.perf_counter() - start
    stats.results = len(matches)
    _record_funnel(stats, "sequential_range", threshold)
    return matches, stats


def sequential_knn_query(
    trees: Sequence[TreeNode],
    query: TreeNode,
    k: int,
    counter: Optional[EditDistanceCounter] = None,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """k-NN by brute force: compute all distances, keep the k smallest."""
    if k < 1 or k > len(trees):
        raise QueryError(f"k must be in [1, {len(trees)}], got {k}")
    if counter is None:
        counter = EditDistanceCounter()
    stats = SearchStats(dataset_size=len(trees), candidates=len(trees))
    start = time.perf_counter()
    with tracing.span("search.sequential_knn", dataset_size=len(trees), k=k):
        distances = [
            (counter.distance(query, tree), index)
            for index, tree in enumerate(trees)
        ]
        distances.sort()
    stats.refine_seconds = time.perf_counter() - start
    stats.results = k
    _record_funnel(stats, "sequential_knn", float(k))
    return [(index, distance) for distance, index in distances[:k]], stats


def distance_matrix(
    trees: Sequence[TreeNode],
    counter: Optional[EditDistanceCounter] = None,
) -> List[List[float]]:
    """Full pairwise edit-distance matrix (used to calibrate query ranges).

    Symmetric with a zero diagonal; ``O(n²)`` exact computations — intended
    for the modest dataset sizes of the benchmark harness.
    """
    if counter is None:
        counter = EditDistanceCounter()
    size = len(trees)
    matrix = [[0.0] * size for _ in range(size)]
    for i in range(size):
        for j in range(i + 1, size):
            distance = counter.distance(trees[i], trees[j])
            matrix[i][j] = distance
            matrix[j][i] = distance
    return matrix
