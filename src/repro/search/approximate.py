"""Approximate search directly in the embedded vector space.

The filter-and-refine pipeline gives *exact* answers; sometimes (data
exploration, candidate generation for a human) the cheap embedded distance
alone is good enough.  Figure 15 of the paper shows why this works: the
binary branch distance tracks the edit distance closely, especially at
small distances.

:func:`approximate_knn_query` ranks the database purely by the positional
lower bound — no exact edit distance is ever computed, so a query costs
``O(Σ|Ti|·log)`` total.  Recall against the exact k-NN is measured in the
tests (and is high on clustered data), but **no guarantee** is attached;
use :func:`repro.search.knn.knn_query` when exactness matters.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from repro.exceptions import QueryError
from repro.filters.base import LowerBoundFilter
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

__all__ = ["approximate_knn_query"]


def approximate_knn_query(
    trees: Sequence[TreeNode],
    query: TreeNode,
    k: int,
    flt: LowerBoundFilter,
) -> Tuple[List[Tuple[int, float]], SearchStats]:
    """The ``k`` trees with the smallest *embedded* distance to the query.

    Returns ``(results, stats)`` where results carry the filter's bound
    value (not the edit distance!) and ``stats.candidates == 0`` — no exact
    distance computations happen at all.
    """
    if k < 1 or k > len(trees):
        raise QueryError(f"k must be in [1, {len(trees)}], got {k}")
    if flt.size != len(trees):
        raise QueryError("filter must be fitted on the searched collection")
    stats = SearchStats(dataset_size=len(trees))
    start = time.perf_counter()
    bounds = flt.bounds(query)
    order = sorted(range(len(trees)), key=lambda index: (bounds[index], index))
    stats.filter_seconds = time.perf_counter() - start
    stats.results = k
    return [(index, bounds[index]) for index in order[:k]], stats
