"""Verification runs: orchestrate oracles, shrink violations, emit repros.

:func:`run_verification` is the single entry point used by the CLI, the
pytest bridge and CI.  It builds the deterministic corpus for
``(seed, budget)``, runs the requested oracles, shrinks every violation
that carries a pair predicate to a minimal counterexample, and (optionally)
writes one replayable JSON repro file per violation.

Repro files (format ``repro-verify`` v1) are self-contained: the oracle
name plus the two bracket-notation trees are enough to re-check the
violated invariant on any checkout — :func:`replay_repro_file` does exactly
that, so a repro file attached to a bug report doubles as a regression
test fixture.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional, Sequence, Union

from repro.exceptions import TreeParseError
from repro.trees.parse import parse_bracket, to_bracket
from repro.verify.corpus import TreePair, build_corpus
from repro.verify.oracles import ORACLE_FACTORIES, PairOracle, make_oracles
from repro.verify.report import VerifyReport, Violation
from repro.verify.shrink import shrink_pair

__all__ = [
    "run_verification",
    "save_repro_file",
    "load_repro_file",
    "replay_repro_file",
    "format_replay",
]

PathLike = Union[str, os.PathLike]

_FORMAT = "repro-verify"
_VERSION = 1


def run_verification(
    seed: int = 0,
    budget: str = "small",
    oracles: Optional[Sequence[str]] = None,
    shrink: bool = True,
    shrink_steps: int = 2000,
    repro_dir: Optional[PathLike] = None,
) -> VerifyReport:
    """Run the oracle harness; returns the aggregated :class:`VerifyReport`.

    Parameters
    ----------
    seed, budget:
        Corpus determinants (see :mod:`repro.verify.corpus`).
    oracles:
        Oracle names to run (default: the full registry).
    shrink:
        Shrink each pair-predicate violation to a minimal counterexample.
    repro_dir:
        When given, write one replayable JSON repro file per violation
        into this directory (created if missing).
    """
    corpus = build_corpus(seed=seed, budget=budget)
    report = VerifyReport(seed=seed, budget=budget)

    from repro.editdist.zhang_shasha import tree_edit_distance

    memo: Dict[int, float] = {}

    def distance(pair: TreePair) -> float:
        key = id(pair)
        if key not in memo:
            memo[key] = tree_edit_distance(pair.t1, pair.t2)
        return memo[key]

    for oracle in make_oracles(oracles):
        started = time.perf_counter()
        outcome = oracle.run(corpus, distance)
        outcome.seconds = time.perf_counter() - started
        if shrink:
            for violation in outcome.violations:
                _shrink_violation(violation, shrink_steps)
        report.add(outcome)

    if repro_dir is not None and report.violations:
        os.makedirs(repro_dir, exist_ok=True)
        for index, violation in enumerate(report.violations):
            save_repro_file(
                violation,
                os.path.join(repro_dir, f"violation-{index:03d}.json"),
                seed=seed,
                budget=budget,
            )
    return report


def _shrink_violation(violation: Violation, shrink_steps: int) -> None:
    if violation.predicate is None or violation.t1 is None or violation.t2 is None:
        return
    shrunk1, shrunk2 = shrink_pair(
        violation.t1, violation.t2, violation.predicate, max_steps=shrink_steps
    )
    if shrunk1 is not None:
        violation.shrunk1, violation.shrunk2 = shrunk1, shrunk2


# ----------------------------------------------------------------------
# Repro files
# ----------------------------------------------------------------------
def save_repro_file(
    violation: Violation,
    path: PathLike,
    seed: Optional[int] = None,
    budget: Optional[str] = None,
) -> None:
    """Write one violation as a replayable JSON repro file."""
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "seed": seed,
        "budget": budget,
        **violation.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=repr)


def load_repro_file(path: PathLike) -> Dict[str, object]:
    """Load and validate a repro file written by :func:`save_repro_file`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise TreeParseError(f"{path}: not a {_FORMAT} file")
    if document.get("version") != _VERSION:
        raise TreeParseError(
            f"{path}: unsupported repro version {document.get('version')!r}"
        )
    return document


def replay_repro_file(path: PathLike) -> Violation:
    """Re-check a repro file's invariant; returns the re-found violation.

    Prefers the shrunk counterexample when present.  Raises ``ValueError``
    when the file's oracle is not replayable pairwise, and returns a
    violation with an empty message when the invariant no longer fails
    (i.e. the bug is fixed).
    """
    document = load_repro_file(path)
    name = str(document["oracle"])
    factory = ORACLE_FACTORIES.get(name)
    if factory is None:
        raise ValueError(f"{path}: unknown oracle {name!r}")
    oracle = factory()
    if not isinstance(oracle, PairOracle):
        seed = document.get("seed")
        budget = document.get("budget")
        rerun = "re-run `repro verify`"
        if seed is not None:
            rerun += f" --seed {seed}"
            if budget is not None:
                rerun += f" --budget {budget}"
        raise ValueError(
            f"{path}: oracle {name!r} is stateful and cannot be replayed "
            f"from a tree pair; {rerun} to reproduce the full run instead"
        )
    t1_text = document.get("shrunk1") or document.get("t1")
    t2_text = document.get("shrunk2") or document.get("t2")
    if not t1_text or not t2_text:
        raise ValueError(f"{path}: repro file carries no tree pair")
    t1, t2 = parse_bracket(str(t1_text)), parse_bracket(str(t2_text))
    found = oracle.check_pair(t1, t2)
    if found is None:
        return Violation(oracle=name, message="", t1=t1, t2=t2)
    message, details = found
    return Violation(oracle=name, message=message, t1=t1, t2=t2, details=details)


def format_replay(violation: Violation) -> str:
    """Human-readable one-liner for ``repro verify --replay``."""
    if not violation.message:
        return (
            f"[{violation.oracle}] no longer violates on "
            f"{to_bracket(violation.t1)} vs {to_bracket(violation.t2)}"
        )
    return f"[{violation.oracle}] still violates: {violation.message}"
