"""repro.verify — the differential & metamorphic oracle harness.

The paper's value proposition is a chain of provable invariants: the binary
branch distance over 5 lower-bounds the unit-cost tree edit distance
(Theorem 4.2), q-level branches obey the ``[4(q-1)+1]·k`` bound, and the
positional refinement tightens but never exceeds soundness.  The layers
added on top of the core algorithms — the shared feature plane, the packed
vectors, the serving cache, the persistence sidecar — each claim to be
*transparent*: faster, but answer-identical.

This package checks all of it systematically.  A seedable corpus generator
(:mod:`repro.verify.corpus`) produces trees and pairs with
construction-time ground truth (``k`` random edit operations bound the
distance by ``k``); a registry of oracles (:mod:`repro.verify.oracles`)
re-derives every invariant over the corpus; failing pairs are shrunk to
minimal counterexamples (:mod:`repro.verify.shrink`) and emitted as
replayable JSON repro files; and the whole run is summarised in a
:class:`~repro.verify.report.VerifyReport` with per-oracle pass/violation
counts (:mod:`repro.verify.runner`).

Entry points: ``repro verify --seed --budget --oracle`` on the command
line, :func:`run_verification` from code, and the pytest bridge in
``tests/verify/`` (small budget in tier-1, large budget in CI).
"""

from repro.verify.corpus import BUDGETS, TreePair, VerifyCorpus, build_corpus
from repro.verify.oracles import ORACLE_FACTORIES, default_oracle_names, make_oracles
from repro.verify.report import OracleOutcome, VerifyReport, Violation
from repro.verify.runner import (
    load_repro_file,
    replay_repro_file,
    run_verification,
    save_repro_file,
)
from repro.verify.shrink import shrink_pair, shrink_tree

__all__ = [
    "BUDGETS",
    "TreePair",
    "VerifyCorpus",
    "build_corpus",
    "ORACLE_FACTORIES",
    "default_oracle_names",
    "make_oracles",
    "OracleOutcome",
    "VerifyReport",
    "Violation",
    "run_verification",
    "save_repro_file",
    "load_repro_file",
    "replay_repro_file",
    "shrink_pair",
    "shrink_tree",
]
