"""The oracle registry: every invariant the system claims, re-checked.

Each oracle audits one class of invariant over a
:class:`~repro.verify.corpus.VerifyCorpus`:

``bound:*``
    Lower-bound **soundness** of every filter against the reference
    Zhang–Shasha distance (Theorems 3.1/4.2 and the ``[4(q−1)+1]·k``
    q-level generalization), plus consistency of the ``refutes`` fast
    paths with the numeric bounds.
``bound:dominance``
    The positional bound dominates both the plain count bound and the
    size difference (the ``SearchLBound`` guarantee), and the exact
    two-constraint matching never *weakens* the bound.
``editdist:metamorphic``
    The reference distance itself, checked without a second
    implementation: ``EDist(T, apply_script(T, k ops)) ≤ k`` by
    construction, symmetry, and identity on clones.
``metric:bdist``
    Metric properties of the binary branch distance (symmetry, identity,
    triangle inequality) — what makes BDist usable inside index structures.
``features:packed-l1``
    The hybrid dict/numpy :class:`~repro.features.packed.PackedVector` L1
    equals the dict-keyed :class:`~repro.core.vectors.BranchVector` L1.
``store:identity``
    Store-backed filter fitting (``fit_from_store`` / ``add_from_store``)
    is bound-identical to legacy per-filter fitting, including after adds.
``storage:roundtrip``
    ``save_database``/``load_database`` round-trips answer-identically with
    zero re-extraction.
``search:completeness``
    Filter-and-refine range/k-NN answers equal brute-force sequential scans.
``search:vectorized-equivalence``
    The corpus-level matrix candidate funnel (:mod:`repro.features.matrix`)
    returns bit-identical answers and identical refined-candidate counts to
    the per-candidate loop — per filter family, in the tiered k-NN, and
    through vectorized shard workers — including under interleaved adds.
``search:index-completeness``
    Metric-index candidate generation (:mod:`repro.index` — VP-tree and
    extended inverted file) answers exactly like the sequential scan and
    never refines more candidates than the vectorized cascade — single
    process and through index-pinned shard workers, under interleaved adds.
``service:cache-transparency``
    Under interleaved add/query traffic, every answer the (caching,
    selectively-invalidating) service returns equals a cold answer
    computed on a fresh database at the same generation.
``service:shard-equivalence``
    Scatter-gather serving (:mod:`repro.sharding`) over N worker shards
    returns bit-identical answers — member ids, distances, tie order — to
    the single-process path, under interleaved add/query traffic, across
    partitioners and filters.
``shard:knn-optimality``
    The coordinator's merged-frontier k-NN refines *exactly* the
    candidates the single-process Algorithm 2 refines: distributing the
    corpus never gives up the optimal multi-step stopping guarantee.
``obs:funnel-consistency``
    The funnel telemetry (:mod:`repro.obs.funnel`) tells the truth: the
    per-stage survivor counts a traced query reports equal an independent
    sequential recount through the filter's ``funnel_components`` cascade,
    the staged cascade equals the deployed one-pass ``refutes`` path, and
    every funnel satisfies its monotonicity invariants.

Pairwise oracles expose a ``violates(t1, t2)`` predicate, which is what
lets the runner shrink their violations to minimal counterexamples.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.vectors import branch_distance
from repro.core.positional import search_lower_bound
from repro.core.qlevel import qlevel_bound_factor
from repro.editdist.costs import weighted_costs
from repro.editdist.zhang_shasha import tree_edit_distance
from repro.exceptions import InvalidParameterError
from repro.features.store import FeatureStore
from repro.filters.base import LowerBoundFilter
from repro.filters.binary_branch import BinaryBranchFilter, BranchCountFilter
from repro.filters.composite import MaxCompositeFilter, SizeDifferenceFilter
from repro.filters.cost_scaled import CostScaledFilter
from repro.filters.histogram import (
    DegreeHistogramFilter,
    HeightHistogramFilter,
    HistogramFilter,
    LabelHistogramFilter,
)
from repro.filters.traversal_string import TraversalStringFilter
from repro.trees.node import TreeNode
from repro.trees.parse import to_bracket
from repro.verify.corpus import TreePair, VerifyCorpus
from repro.verify.report import OracleOutcome, Violation

__all__ = [
    "Oracle",
    "PairOracle",
    "ORACLE_FACTORIES",
    "default_oracle_names",
    "make_oracles",
]

#: numeric slack for float bound comparisons (all distances are integral
#: under unit costs, so anything beyond rounding noise is a real violation)
_EPS = 1e-9

DistanceFn = Callable[[TreePair], float]


class Oracle:
    """One verifiable invariant class; ``run`` tallies it over a corpus."""

    name: str = "abstract"
    description: str = ""

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        """Check the invariant over ``corpus``; ``distance`` memoizes TED."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class PairOracle(Oracle):
    """An oracle whose invariant is a property of one tree pair.

    Subclasses implement :meth:`check_pair`; violations automatically carry
    the :meth:`violates` predicate, making them shrinkable and replayable.
    """

    def check_pair(self, t1: TreeNode, t2: TreeNode) -> Optional[Tuple[str, Dict]]:
        """Return ``(message, details)`` when the pair violates, else None."""
        raise NotImplementedError

    def violates(self, t1: TreeNode, t2: TreeNode) -> bool:
        return self.check_pair(t1, t2) is not None

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        outcome = OracleOutcome(self.name)
        for pair in corpus.pairs:
            outcome.checks += 1
            found = self.check_pair(pair.t1, pair.t2)
            if found is not None:
                message, details = found
                details.setdefault("origin", pair.origin)
                outcome.record(
                    Violation(
                        oracle=self.name,
                        message=message,
                        t1=pair.t1,
                        t2=pair.t2,
                        details=details,
                        predicate=self.violates,
                    )
                )
        return outcome


# ----------------------------------------------------------------------
# bound:* — filter lower-bound soundness
# ----------------------------------------------------------------------
class FilterBoundOracle(PairOracle):
    """``filter.bound(q, d) ≤ EDist`` and ``refutes ⟹ EDist > τ``.

    The filter is exercised exactly as deployed: a fresh instance is fitted
    on the data tree, the query signature comes from :meth:`signature`, and
    both the numeric bound and the range-refutation fast path are compared
    against the reference distance.
    """

    def __init__(self, factory: Callable[[], LowerBoundFilter], label: str) -> None:
        self.factory = factory
        self.name = f"bound:{label}"
        self.description = f"lower-bound soundness of {label}"

    def check_pair(self, t1: TreeNode, t2: TreeNode) -> Optional[Tuple[str, Dict]]:
        flt = self.factory().fit([t2])
        reference = tree_edit_distance(t1, t2)
        bound = flt.bounds(t1)[0]
        if bound > reference + _EPS:
            return (
                f"{flt.name}: bound {bound:g} exceeds EDist {reference:g}",
                {"bound": bound, "edist": reference, "kind": "bound"},
            )
        query_signature = flt.signature(t1)
        data_signature = flt.data_signature(0)
        for threshold in {0.0, 1.0, 2.0, max(0.0, float(int(reference)) - 1.0)}:
            if flt.refutes(query_signature, data_signature, threshold):
                if reference <= threshold + _EPS:
                    return (
                        f"{flt.name}: refutes(τ={threshold:g}) "
                        f"but EDist is {reference:g}",
                        {
                            "threshold": threshold,
                            "edist": reference,
                            "kind": "refutes",
                        },
                    )
        return None

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        outcome = super().run(corpus, distance)
        # metamorphic leg: construction bounds need no reference distance,
        # so they cross-check reference and filter at once
        for pair in corpus.pairs:
            if pair.max_distance is None:
                continue
            outcome.checks += 1
            flt = self.factory().fit([pair.t2])
            bound = flt.bounds(pair.t1)[0]
            if bound > pair.max_distance + _EPS:
                outcome.record(
                    Violation(
                        oracle=self.name,
                        message=(
                            f"{flt.name}: bound {bound:g} exceeds the "
                            f"edit-script length {pair.max_distance}"
                        ),
                        t1=pair.t1,
                        t2=pair.t2,
                        details={
                            "bound": bound,
                            "script_length": pair.max_distance,
                            "kind": "metamorphic",
                            "origin": pair.origin,
                        },
                        predicate=self.violates,
                    )
                )
        return outcome


class CostScaledBoundOracle(PairOracle):
    """Soundness of :class:`CostScaledFilter` against the *weighted* EDist.

    The generic ``bound:*`` oracles compare against the unit-cost distance,
    which is the wrong reference here: the scaled bound may legitimately
    exceed ``EDist_unit`` (that is the point of the scaling).  The contract
    is ``c_min · unit_bound ≤ EDist_general``, so this oracle fits the
    wrapped filter and compares against ``tree_edit_distance`` under the
    same weighted cost model, including the ``refutes`` fast path.
    """

    name = "bound:CostScaled"
    description = "cost-scaled bound soundness vs the weighted edit distance"

    #: deliberately asymmetric so relabel ≠ delete+insert shortcuts show up
    _COSTS = weighted_costs(2.0, 3.0, 1.5)

    def _make_filter(self) -> CostScaledFilter:
        return CostScaledFilter(BinaryBranchFilter(), self._COSTS)

    def check_pair(self, t1: TreeNode, t2: TreeNode) -> Optional[Tuple[str, Dict]]:
        costs = self._COSTS
        flt = self._make_filter().fit([t2])
        reference = tree_edit_distance(t1, t2, costs)
        bound = flt.bounds(t1)[0]
        if bound > reference + _EPS:
            return (
                f"{flt.name}: scaled bound {bound:g} exceeds weighted "
                f"EDist {reference:g}",
                {"bound": bound, "weighted_edist": reference, "kind": "bound"},
            )
        query_signature = flt.signature(t1)
        data_signature = flt.data_signature(0)
        for threshold in (0.0, costs.min_operation_cost, reference - 1.0):
            if threshold < 0:
                continue
            if flt.refutes(query_signature, data_signature, threshold):
                if reference <= threshold + _EPS:
                    return (
                        f"{flt.name}: refutes(τ={threshold:g}) but weighted "
                        f"EDist is {reference:g}",
                        {
                            "threshold": threshold,
                            "weighted_edist": reference,
                            "kind": "refutes",
                        },
                    )
        return None


class DominanceOracle(PairOracle):
    """``SearchLBound`` dominance and exact-matching monotonicity (§4.2).

    The positional bound must be at least ``⌈BDist/[4(q−1)+1]⌉`` and at
    least the size difference; the exact two-constraint matching can only
    match less than the per-dimension approximation, so the exact bound can
    only be equal or larger.
    """

    name = "bound:dominance"
    description = "positional bound dominates count bound and size difference"

    #: exact bipartite matching is O(V·E) per branch — cap the input size
    _EXACT_LIMIT = 14

    def check_pair(self, t1: TreeNode, t2: TreeNode) -> Optional[Tuple[str, Dict]]:
        for q in (2, 3):
            factor = qlevel_bound_factor(q)
            positional = search_lower_bound(t1, t2, q=q)
            count_bound = -(-branch_distance(t1, t2, q=q) // factor)
            size_bound = abs(t1.size - t2.size)
            if positional + _EPS < max(count_bound, size_bound):
                return (
                    f"positional bound {positional} at q={q} below "
                    f"max(count {count_bound}, size {size_bound})",
                    {
                        "q": q,
                        "positional": positional,
                        "count_bound": count_bound,
                        "size_bound": size_bound,
                        "kind": "dominance",
                    },
                )
            if t1.size <= self._EXACT_LIMIT and t2.size <= self._EXACT_LIMIT:
                exact = search_lower_bound(t1, t2, q=q, exact=True)
                if exact + _EPS < positional:
                    return (
                        f"exact positional bound {exact} at q={q} below "
                        f"approximate bound {positional}",
                        {
                            "q": q,
                            "exact": exact,
                            "approximate": positional,
                            "kind": "exact-dominance",
                        },
                    )
        return None


# ----------------------------------------------------------------------
# editdist:metamorphic — the reference distance checked against itself
# ----------------------------------------------------------------------
class EditScriptOracle(PairOracle):
    """Reference-distance sanity: construction bound, symmetry, identity."""

    name = "editdist:metamorphic"
    description = "Zhang–Shasha obeys construction bounds and symmetry"

    def check_pair(self, t1: TreeNode, t2: TreeNode) -> Optional[Tuple[str, Dict]]:
        forward = tree_edit_distance(t1, t2)
        backward = tree_edit_distance(t2, t1)
        if abs(forward - backward) > _EPS:
            return (
                f"EDist not symmetric: {forward:g} vs {backward:g}",
                {"forward": forward, "backward": backward, "kind": "symmetry"},
            )
        if forward < -_EPS:
            return (
                f"EDist negative: {forward:g}",
                {"edist": forward, "kind": "nonnegative"},
            )
        return None

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        outcome = super().run(corpus, distance)
        for pair in corpus.pairs:
            if pair.max_distance is None:
                continue
            outcome.checks += 1
            reference = distance(pair)
            if reference > pair.max_distance + _EPS:
                outcome.record(
                    Violation(
                        oracle=self.name,
                        message=(
                            f"EDist {reference:g} exceeds the edit-script "
                            f"length {pair.max_distance}"
                        ),
                        t1=pair.t1,
                        t2=pair.t2,
                        details={
                            "edist": reference,
                            "script_length": pair.max_distance,
                            "kind": "construction-bound",
                            "origin": pair.origin,
                        },
                    )
                )
        return outcome


# ----------------------------------------------------------------------
# metric:bdist — BDist is a metric on vectors
# ----------------------------------------------------------------------
class BranchMetricOracle(Oracle):
    """Symmetry, identity and triangle inequality of the L1 branch distance."""

    name = "metric:bdist"
    description = "binary branch distance metric properties"

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        outcome = OracleOutcome(self.name)
        trees = corpus.trees
        for q in (2, 3):
            for i, tree in enumerate(trees):
                outcome.checks += 1
                identity = branch_distance(tree, tree.clone(), q=q)
                if identity != 0:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message=f"BDist(T, clone(T)) = {identity} at q={q}",
                            t1=tree,
                            details={"q": q, "index": i, "kind": "identity"},
                        )
                    )
            # deterministic triple sweep: consecutive windows cover every
            # tree while keeping the check count linear in the corpus
            for i in range(len(trees) - 2):
                a, b, c = trees[i], trees[i + 1], trees[i + 2]
                outcome.checks += 1
                ab = branch_distance(a, b, q=q)
                ba = branch_distance(b, a, q=q)
                if ab != ba:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message=f"BDist not symmetric at q={q}: {ab} vs {ba}",
                            t1=a,
                            t2=b,
                            details={"q": q, "kind": "symmetry"},
                        )
                    )
                    continue
                bc = branch_distance(b, c, q=q)
                ac = branch_distance(a, c, q=q)
                if ac > ab + bc:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message=(
                                f"triangle inequality broken at q={q}: "
                                f"d(a,c)={ac} > d(a,b)+d(b,c)={ab + bc}"
                            ),
                            t1=a,
                            t2=c,
                            details={
                                "q": q,
                                "ab": ab,
                                "bc": bc,
                                "ac": ac,
                                "middle": to_bracket(b),
                                "kind": "triangle",
                            },
                        )
                    )
        return outcome


# ----------------------------------------------------------------------
# features:packed-l1 — packed vectors equal the dict-keyed reference
# ----------------------------------------------------------------------
class PackedVectorOracle(PairOracle):
    """Hybrid packed L1 (dict or numpy merge) equals the BranchVector L1.

    The corpus-wide pass catches vocabulary-growth bugs (shared store, every
    pair); the pairwise predicate rebuilds a minimal one-tree store so the
    violation shrinks and replays in isolation — the query side goes through
    :meth:`FeatureStore.pack_query`, exercising the out-of-vocabulary
    ``extra`` path.
    """

    name = "features:packed-l1"
    description = "PackedVector L1 equals dict-keyed BranchVector L1"

    def check_pair(self, t1: TreeNode, t2: TreeNode) -> Optional[Tuple[str, Dict]]:
        for q in (2, 3):
            store = FeatureStore((q,)).fit([t1])
            packed = store.packed_vector(0, q)
            query = store.pack_query(t2, q)
            got = packed.l1_distance(query)
            expected = branch_distance(t1, t2, q=q)
            if got != expected:
                return (
                    f"packed L1 {got} != reference L1 {expected} at q={q}",
                    {"q": q, "packed": got, "reference": expected},
                )
        return None

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        outcome = super().run(corpus, distance)
        store = FeatureStore((2, 3)).fit(corpus.trees)
        trees = corpus.trees
        for q in (2, 3):
            for i in range(len(trees) - 1):
                outcome.checks += 1
                got = store.packed_vector(i, q).l1_distance(
                    store.packed_vector(i + 1, q)
                )
                expected = branch_distance(trees[i], trees[i + 1], q=q)
                if got != expected:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message=(
                                f"store-interned packed L1 {got} != reference "
                                f"{expected} at q={q} (trees {i}, {i + 1})"
                            ),
                            t1=trees[i],
                            t2=trees[i + 1],
                            details={"q": q, "packed": got, "reference": expected},
                            predicate=self.violates,
                        )
                    )
        return outcome


# ----------------------------------------------------------------------
# store:identity — fit_from_store ≡ fit
# ----------------------------------------------------------------------
class StoreIdentityOracle(Oracle):
    """Store-backed signatures produce bit-identical bounds, incl. after add."""

    name = "store:identity"
    description = "fit_from_store/add_from_store bounds equal legacy fit/add"

    def __init__(
        self, factories: Sequence[Tuple[str, Callable[[], LowerBoundFilter]]]
    ) -> None:
        self.factories = list(factories)

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        outcome = OracleOutcome(self.name)
        base = corpus.trees[: max(4, len(corpus.trees) // 2)]
        added = corpus.trees[len(base) : len(base) + 3]
        queries = [pair.t2 for pair in corpus.pairs[:6]]
        for label, factory in self.factories:
            legacy = factory()
            if not legacy.supports_store:
                continue
            legacy.fit(base)
            store = FeatureStore(legacy.required_q_levels() or (2,)).fit(base)
            store_backed = factory().fit_from_store(store)
            phases = [("fit", legacy, store_backed)]
            for tree in added:
                legacy.add(tree)
                store_backed.add_from_store(store, store.add(tree))
            phases.append(("add", legacy, store_backed))
            for phase, flt_a, flt_b in phases:
                for query in queries:
                    outcome.checks += 1
                    bounds_a = flt_a.bounds(query)
                    bounds_b = flt_b.bounds(query)
                    if bounds_a != bounds_b:
                        mismatch = next(
                            (i, a, b)
                            for i, (a, b) in enumerate(zip(bounds_a, bounds_b))
                            if a != b
                        )
                        outcome.record(
                            Violation(
                                oracle=self.name,
                                message=(
                                    f"{label}: store-backed bound differs after "
                                    f"{phase} at tree {mismatch[0]}: "
                                    f"legacy {mismatch[1]:g} vs store {mismatch[2]:g}"
                                ),
                                t1=query,
                                t2=(base + added)[mismatch[0]],
                                details={
                                    "filter": label,
                                    "phase": phase,
                                    "tree_index": mismatch[0],
                                    "legacy": mismatch[1],
                                    "store": mismatch[2],
                                },
                            )
                        )
                        break  # one mismatch per filter/phase is enough signal
        return outcome


# ----------------------------------------------------------------------
# storage:roundtrip — persistence is answer-identical
# ----------------------------------------------------------------------
class RoundTripOracle(Oracle):
    """save/load round-trip: zero re-extraction, identical answers."""

    name = "storage:roundtrip"
    description = "save_database/load_database round-trips answer-identically"

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        import tempfile
        from pathlib import Path

        from repro.search.database import TreeDatabase
        from repro.storage import load_database, save_database

        outcome = OracleOutcome(self.name)
        original = TreeDatabase(list(corpus.trees))
        with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
            path = Path(tmp) / "corpus.trees"
            save_database(original, path)
            loaded = load_database(path)
            outcome.checks += 1
            if loaded.features is None or loaded.features.extraction_passes != 0:
                passes = (
                    None
                    if loaded.features is None
                    else loaded.features.extraction_passes
                )
                outcome.record(
                    Violation(
                        oracle=self.name,
                        message=(
                            "loaded database re-extracted features "
                            f"(extraction_passes={passes})"
                        ),
                        details={"extraction_passes": passes},
                    )
                )
            for pair in corpus.pairs[:8]:
                query = pair.t2
                outcome.checks += 1
                fresh_bounds = original.filter.bounds(query)
                loaded_bounds = loaded.filter.bounds(query)
                if fresh_bounds != loaded_bounds:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message="loaded filter bounds differ from original",
                            t1=query,
                            details={
                                "first_mismatch": next(
                                    i
                                    for i, (a, b) in enumerate(
                                        zip(fresh_bounds, loaded_bounds)
                                    )
                                    if a != b
                                ),
                            },
                        )
                    )
                    continue
                outcome.checks += 1
                threshold = 2.0
                if (
                    original.range_query(query, threshold)[0]
                    != loaded.range_query(query, threshold)[0]
                ):
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message="loaded range answer differs from original",
                            t1=query,
                            details={"threshold": threshold},
                        )
                    )
                outcome.checks += 1
                if original.knn(query, 3)[0] != loaded.knn(query, 3)[0]:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message="loaded k-NN answer differs from original",
                            t1=query,
                            details={"k": 3},
                        )
                    )
        return outcome


# ----------------------------------------------------------------------
# search:completeness — filter-and-refine equals sequential scan
# ----------------------------------------------------------------------
class SearchCompletenessOracle(Oracle):
    """Range/k-NN through the filter pipeline equal brute-force answers."""

    name = "search:completeness"
    description = "filtered range/k-NN answers equal sequential ground truth"

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        from repro.search.database import TreeDatabase

        outcome = OracleOutcome(self.name)
        database = TreeDatabase(list(corpus.trees))
        for pair in corpus.pairs[:10]:
            query = pair.t2
            for threshold in (1.0, 3.0):
                outcome.checks += 1
                filtered = database.range_query(query, threshold)[0]
                sequential = database.sequential_range_query(query, threshold)[0]
                if filtered != sequential:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message=(
                                f"range(τ={threshold:g}) differs from "
                                f"sequential scan: {len(filtered)} vs "
                                f"{len(sequential)} matches"
                            ),
                            t1=query,
                            details={
                                "threshold": threshold,
                                "filtered": filtered,
                                "sequential": sequential,
                            },
                        )
                    )
            outcome.checks += 1
            k = 3
            filtered_knn = database.knn(query, k)[0]
            sequential_knn = database.sequential_knn(query, k)[0]
            # ties at the k-th distance make the member set ambiguous; the
            # invariant is the sorted distance profile
            if [d for _, d in filtered_knn] != [d for _, d in sequential_knn]:
                outcome.record(
                    Violation(
                        oracle=self.name,
                        message="k-NN distance profile differs from sequential",
                        t1=query,
                        details={
                            "k": k,
                            "filtered": filtered_knn,
                            "sequential": sequential_knn,
                        },
                    )
                )
        return outcome


# ----------------------------------------------------------------------
# service:cache-transparency — cached answers equal cold answers
# ----------------------------------------------------------------------
class ServiceCacheOracle(Oracle):
    """Interleaved add/query: the service never serves a stale answer.

    Replays the corpus's deterministic schedule through a
    :class:`~repro.service.engine.TreeSearchService` with a small result
    cache, and after every step compares each live query's served answer —
    which may come from the selectively-invalidated cache — against a cold
    answer computed on a fresh database at the same generation.
    """

    name = "service:cache-transparency"
    description = "cached answers equal cold answers at every generation"

    #: distinct queries re-validated after each mutation
    _REVALIDATED = 4

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        from repro.search.database import TreeDatabase
        from repro.search.knn import knn_query
        from repro.search.range_query import range_query
        from repro.service.engine import TreeSearchService

        outcome = OracleOutcome(self.name)
        shadow: List[TreeNode] = list(corpus.trees)
        service = TreeSearchService(
            TreeDatabase(list(shadow)), cache_size=64, max_workers=1
        )
        live: List[Tuple[str, TreeNode, float]] = []

        def cold_answer(kind: str, query: TreeNode, parameter: float):
            reference = TreeDatabase(list(shadow))
            if kind == "range":
                return range_query(
                    reference.trees, query, parameter, reference.filter,
                    reference.counter,
                )[0]
            return knn_query(
                reference.trees, query, int(parameter), reference.filter,
                reference.counter,
            )[0]

        def compare(kind: str, query: TreeNode, parameter: float, step: int) -> None:
            outcome.checks += 1
            if kind == "range":
                served = service.range(query, parameter)[0]
            else:
                served = service.knn(query, int(parameter))[0]
            expected = cold_answer(kind, query, parameter)
            if served != expected:
                outcome.record(
                    Violation(
                        oracle=self.name,
                        message=(
                            f"{kind} answer diverged from cold answer at "
                            f"schedule step {step} "
                            f"(generation {service.database.generation})"
                        ),
                        t1=query,
                        details={
                            "step": step,
                            "kind": kind,
                            "parameter": parameter,
                            "served": served,
                            "expected": expected,
                            "generation": service.database.generation,
                        },
                    )
                )

        try:
            for step, entry in enumerate(corpus.service_schedule):
                if entry[0] == "add":
                    tree = entry[1]
                    service.add(tree)
                    shadow.append(tree)
                    # cached entries surviving the selective invalidation
                    # must still match cold answers at the new generation
                    for kind, query, parameter in live[-self._REVALIDATED:]:
                        compare(kind, query, parameter, step)
                else:
                    _, kind, query, parameter = entry
                    compare(kind, query, parameter, step)
                    live.append((kind, query, parameter))
                    # immediately re-issue: the second answer is served from
                    # cache and must be identical
                    compare(kind, query, parameter, step)
        finally:
            service.close()
        return outcome


# ----------------------------------------------------------------------
# service:shard-equivalence / shard:knn-optimality — sharding is invisible
# ----------------------------------------------------------------------
class ShardEquivalenceOracle(Oracle):
    """Sharded scatter-gather answers equal single-process answers.

    Replays the corpus's interleaved add/query schedule through a
    :class:`~repro.sharding.coordinator.ShardedTreeService` at several
    ``(shards, partitioner, filter)`` layouts; every served answer —
    member ids, distances, tie order — must be bit-identical to a cold
    single-process answer computed on a fresh database over the same
    trees with the same filter family.  Adds route through the
    coordinator, so the check also covers post-mutation layouts where
    the workers' vocabularies have diverged from the coordinator's.
    """

    name = "service:shard-equivalence"
    description = "sharded answers equal single-process answers at every step"

    #: layouts under test: both partitioners, an uneven shard count, and
    #: a second filter family (count bound ⇒ different frontier orders)
    _CONFIGS = (
        (2, "round-robin", "bibranch"),
        (3, "size-banded", "bibranch"),
        (2, "round-robin", "bibranchcount"),
    )

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        from repro.search.database import TreeDatabase
        from repro.search.knn import knn_query
        from repro.search.range_query import range_query
        from repro.sharding.coordinator import ShardedTreeService
        from repro.sharding.worker import FILTER_FACTORIES

        outcome = OracleOutcome(self.name)
        for shards, partitioner, filter_name in self._CONFIGS:
            shadow: List[TreeNode] = list(corpus.trees)
            service = ShardedTreeService(
                shadow,
                shards=shards,
                partitioner=partitioner,
                filter_name=filter_name,
                max_workers=1,
            )
            try:
                for step, entry in enumerate(corpus.service_schedule):
                    if entry[0] == "add":
                        service.add(entry[1])
                        shadow.append(entry[1])
                        continue
                    _, kind, query, parameter = entry
                    outcome.checks += 1
                    reference = TreeDatabase(
                        list(shadow), flt=FILTER_FACTORIES[filter_name]()
                    )
                    if kind == "range":
                        served = service.range(query, parameter)[0]
                        expected = range_query(
                            reference.trees, query, parameter,
                            reference.filter, reference.counter,
                        )[0]
                    else:
                        served = service.knn(query, int(parameter))[0]
                        expected = knn_query(
                            reference.trees, query, int(parameter),
                            reference.filter, reference.counter,
                        )[0]
                    if served != expected:
                        outcome.record(
                            Violation(
                                oracle=self.name,
                                message=(
                                    f"{kind} answer over {shards} "
                                    f"{partitioner}/{filter_name} shards "
                                    f"diverged from single-process at "
                                    f"schedule step {step}"
                                ),
                                t1=query,
                                details={
                                    "step": step,
                                    "kind": kind,
                                    "parameter": parameter,
                                    "shards": shards,
                                    "partitioner": partitioner,
                                    "filter": filter_name,
                                    "served": served,
                                    "expected": expected,
                                },
                            )
                        )
            finally:
                service.close()
        return outcome


class ShardKnnOptimalityOracle(Oracle):
    """Distributed k-NN refines exactly the single-process candidate set.

    Algorithm 2's optimality theorem says the multi-step search refines
    the unique minimal candidate set the lower bounds permit.  The
    coordinator's merged-frontier protocol claims to preserve that:
    per-shard frontiers ascend in ``(bound, local)``, the merge heap
    restores the global ``(bound, index)`` order, and the stop test runs
    *before* each refinement.  This oracle replays k-NN queries at
    several ``k`` against both paths and requires identical neighbours
    **and** an identical refined-candidate count — a sharded run that
    refines even one extra tree breaks the guarantee.
    """

    name = "shard:knn-optimality"
    description = "sharded k-NN refines exactly the single-process candidates"

    _CONFIGS = (
        (2, "round-robin", "bibranch"),
        (3, "size-banded", "bibranch"),
    )
    _KS = (1, 2, 4)

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        from repro.search.database import TreeDatabase
        from repro.search.knn import knn_query
        from repro.sharding.coordinator import ShardedTreeService
        from repro.sharding.worker import FILTER_FACTORIES

        outcome = OracleOutcome(self.name)
        trees = list(corpus.trees)
        queries = [pair.t2 for pair in corpus.pairs[:6]]
        for shards, partitioner, filter_name in self._CONFIGS:
            reference = TreeDatabase(
                list(trees), flt=FILTER_FACTORIES[filter_name]()
            )
            service = ShardedTreeService(
                trees,
                shards=shards,
                partitioner=partitioner,
                filter_name=filter_name,
                max_workers=1,
            )
            try:
                for query in queries:
                    for k in self._KS:
                        if k > len(trees):
                            continue
                        outcome.checks += 1
                        served, stats = service.knn(query, k)
                        expected, ref_stats = knn_query(
                            reference.trees, query, k,
                            reference.filter, reference.counter,
                        )
                        problem = None
                        if served != expected:
                            problem = "neighbours differ"
                        elif stats.candidates != ref_stats.candidates:
                            problem = (
                                f"refined {stats.candidates} candidates, "
                                f"single-process refined "
                                f"{ref_stats.candidates}"
                            )
                        if problem is not None:
                            outcome.record(
                                Violation(
                                    oracle=self.name,
                                    message=(
                                        f"knn(k={k}) over {shards} "
                                        f"{partitioner}/{filter_name} shards: "
                                        f"{problem}"
                                    ),
                                    t1=query,
                                    details={
                                        "k": k,
                                        "shards": shards,
                                        "partitioner": partitioner,
                                        "filter": filter_name,
                                        "served": served,
                                        "expected": expected,
                                        "served_candidates": stats.candidates,
                                        "expected_candidates": (
                                            ref_stats.candidates
                                        ),
                                    },
                                )
                            )
            finally:
                service.close()
        return outcome


# ----------------------------------------------------------------------
# search:vectorized-equivalence — matrix kernels equal the loop path
# ----------------------------------------------------------------------
class VectorizedEquivalenceOracle(Oracle):
    """The vectorized candidate funnel is answer- and effort-identical.

    Three legs, all replaying interleaved add/query traffic so the
    incremental plane sync (row appends + vocabulary widening) is on the
    hook, not just the cold build:

    * **single-process**: per filter family, every scheduled range/k-NN
      query is answered twice over the same fitted filter — once with
      ``matrices=None`` (the pure per-candidate reference path) and once
      over :class:`~repro.features.matrix.FeatureMatrices` — and must
      return identical matches **and** an identical refined-candidate
      count (``stats.candidates``), so the matrix cascade prunes exactly
      the loop's refutations, never more, never fewer.
    * **tiered**: :func:`~repro.search.tiered_knn.tiered_knn_query`'s
      cheap ordering tier vectorized vs loop — same neighbours, same
      refined count (the ⌈L1/factor⌉ ≡ ``_count_bound`` identity).
    * **sharded**: a :class:`~repro.sharding.coordinator.ShardedTreeService`
      pinned to ``candidate_source="vectorized"`` (planes scattered
      zero-copy from shared memory) against a fresh loop-path reference
      database at every schedule step.
    """

    name = "search:vectorized-equivalence"
    description = "matrix candidate generation equals the per-candidate loop"

    _FAMILIES: Sequence[Tuple[str, Callable[[], LowerBoundFilter]]] = (
        ("BiBranch", BinaryBranchFilter),
        ("BiBranchCount", BranchCountFilter),
        ("Histo", HistogramFilter),
        (
            "HistoFolded",
            lambda: HistogramFilter(label_bins=4, degree_bins=4, height_cap=4),
        ),
        ("SizeDiff", SizeDifferenceFilter),
        (
            "Composite",
            lambda: MaxCompositeFilter(
                [BranchCountFilter(), SizeDifferenceFilter(), HistogramFilter()]
            ),
        ),
    )
    _SHARD_CONFIGS = (
        (2, "round-robin", "bibranch"),
        (2, "size-banded", "bibranchcount"),
    )

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        from repro.search.database import TreeDatabase
        from repro.search.knn import knn_query
        from repro.search.range_query import range_query
        from repro.search.tiered_knn import tiered_knn_query

        outcome = OracleOutcome(self.name)

        def record(message: str, query: TreeNode, details: Dict) -> None:
            outcome.record(
                Violation(
                    oracle=self.name, message=message, t1=query, details=details
                )
            )

        # --- single-process leg: every family, loop vs matrices --------
        for label, factory in self._FAMILIES:
            shadow: List[TreeNode] = list(corpus.trees)
            flt = factory().fit(shadow)
            store = FeatureStore(flt.required_q_levels() or (2,)).fit(shadow)
            matrices = store.matrices()
            for step, entry in enumerate(corpus.service_schedule):
                if entry[0] == "add":
                    shadow.append(entry[1])
                    flt.add(entry[1])
                    store.add(entry[1])
                    continue
                _, kind, query, parameter = entry
                outcome.checks += 1
                if kind == "range":
                    loop_answer, loop_stats = range_query(
                        shadow, query, parameter, flt
                    )
                    fast_answer, fast_stats = range_query(
                        shadow, query, parameter, flt, matrices=matrices
                    )
                else:
                    k = min(int(parameter), len(shadow))
                    loop_answer, loop_stats = knn_query(shadow, query, k, flt)
                    fast_answer, fast_stats = knn_query(
                        shadow, query, k, flt, matrices=matrices
                    )
                problem = None
                if fast_answer != loop_answer:
                    problem = "answers differ"
                elif fast_stats.candidates != loop_stats.candidates:
                    problem = (
                        f"vectorized refined {fast_stats.candidates} "
                        f"candidates, loop refined {loop_stats.candidates}"
                    )
                if problem is not None:
                    record(
                        f"{label} {kind} at schedule step {step}: {problem}",
                        query,
                        {
                            "filter": label,
                            "kind": kind,
                            "step": step,
                            "parameter": parameter,
                            "loop": loop_answer,
                            "vectorized": fast_answer,
                            "loop_candidates": loop_stats.candidates,
                            "vectorized_candidates": fast_stats.candidates,
                        },
                    )

        # --- tiered leg: count-bound tier vectorized vs loop -----------
        shadow = list(corpus.trees)
        flt = BinaryBranchFilter().fit(shadow)
        store = FeatureStore(flt.required_q_levels() or (2,)).fit(shadow)
        matrices = store.matrices()
        queries = [pair.t2 for pair in corpus.pairs[:6]]
        extra = corpus.trees[0]
        for phase in ("fit", "add"):
            if phase == "add":
                clone = extra.clone()
                shadow.append(clone)
                flt.add(clone)
                store.add(clone)
            for query in queries:
                for k in (1, 3):
                    if k > len(shadow):
                        continue
                    outcome.checks += 1
                    loop_answer, loop_stats = tiered_knn_query(
                        shadow, query, k, flt
                    )
                    fast_answer, fast_stats = tiered_knn_query(
                        shadow, query, k, flt, matrices=matrices
                    )
                    if (
                        fast_answer != loop_answer
                        or fast_stats.candidates != loop_stats.candidates
                    ):
                        record(
                            f"tiered knn(k={k}) after {phase}: vectorized "
                            f"tier diverged from loop",
                            query,
                            {
                                "k": k,
                                "phase": phase,
                                "loop": loop_answer,
                                "vectorized": fast_answer,
                                "loop_candidates": loop_stats.candidates,
                                "vectorized_candidates": fast_stats.candidates,
                            },
                        )

        # --- sharded leg: vectorized workers vs loop reference ----------
        from repro.sharding.coordinator import ShardedTreeService
        from repro.sharding.worker import FILTER_FACTORIES

        for shards, partitioner, filter_name in self._SHARD_CONFIGS:
            shadow = list(corpus.trees)
            service = ShardedTreeService(
                shadow,
                shards=shards,
                partitioner=partitioner,
                filter_name=filter_name,
                max_workers=1,
                candidate_source="vectorized",
            )
            try:
                for step, entry in enumerate(corpus.service_schedule):
                    if entry[0] == "add":
                        service.add(entry[1])
                        shadow.append(entry[1])
                        continue
                    _, kind, query, parameter = entry
                    outcome.checks += 1
                    reference = TreeDatabase(
                        list(shadow), flt=FILTER_FACTORIES[filter_name]()
                    )
                    if kind == "range":
                        served, stats = service.range(query, parameter)
                        expected, ref_stats = range_query(
                            reference.trees, query, parameter,
                            reference.filter, reference.counter,
                        )
                    else:
                        k = min(int(parameter), len(shadow))
                        served, stats = service.knn(query, k)
                        expected, ref_stats = knn_query(
                            reference.trees, query, k,
                            reference.filter, reference.counter,
                        )
                    problem = None
                    if served != expected:
                        problem = "answers differ"
                    elif stats.candidates != ref_stats.candidates:
                        problem = (
                            f"vectorized shards refined {stats.candidates} "
                            f"candidates, loop refined {ref_stats.candidates}"
                        )
                    if problem is not None:
                        record(
                            f"{kind} over {shards} {partitioner}/"
                            f"{filter_name} vectorized shards at schedule "
                            f"step {step}: {problem}",
                            query,
                            {
                                "step": step,
                                "kind": kind,
                                "parameter": parameter,
                                "shards": shards,
                                "partitioner": partitioner,
                                "filter": filter_name,
                                "served": served,
                                "expected": expected,
                                "served_candidates": stats.candidates,
                                "expected_candidates": ref_stats.candidates,
                            },
                        )
            finally:
                service.close()
        return outcome


# ----------------------------------------------------------------------
# search:index-completeness — metric-index candidates are exact
# ----------------------------------------------------------------------
class IndexCompletenessOracle(Oracle):
    """Metric-index candidate generation is exact and never over-refines.

    Two legs per index kind (``vptree``, ``ifi``), both replaying the
    interleaved add/query schedule so the generation-stamped incremental
    sync is on the hook, not just the cold build:

    * **single-process**: per filter family, every scheduled range query
      is answered three ways over the same fitted filter — sequential
      scan (ground truth), vectorized cascade, and index-pruned cascade.
      The index answers must equal the sequential matches exactly (the
      triangle-inequality pruning may never drop a true result) and must
      refine **at most** as many candidates as the vectorized path (the
      BDist ball only shrinks the cascade's domain).  k-NN answers must
      equal the reference loop bit-for-bit with refined counts exactly
      equal — the lazy :class:`~repro.index.ordering.OrderedBoundStream`
      replays the reference ``(bound, row)`` order, including tie-breaks.
    * **sharded**: a :class:`~repro.sharding.coordinator.ShardedTreeService`
      pinned to ``candidate_source=<kind>`` (each worker builds its own
      index over the shared-memory plane) against a fresh loop-path
      reference database at every schedule step — identical answers,
      identical refined counts.
    """

    name = "search:index-completeness"
    description = "vptree/ifi index candidates: exact answers, <= vectorized work"

    _FAMILIES: Sequence[Tuple[str, Callable[[], LowerBoundFilter]]] = (
        ("BiBranch", BinaryBranchFilter),
        ("BiBranchCount", BranchCountFilter),
        ("Histo", HistogramFilter),
    )
    _SHARD_CONFIGS = (
        (2, "round-robin", "bibranch", "vptree"),
        (2, "size-banded", "bibranchcount", "ifi"),
    )

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        from repro.index import INDEX_KINDS, build_candidate_index
        from repro.search.knn import knn_query
        from repro.search.range_query import range_query
        from repro.search.sequential import sequential_range_query

        outcome = OracleOutcome(self.name)

        def record(message: str, query: TreeNode, details: Dict) -> None:
            outcome.record(
                Violation(
                    oracle=self.name, message=message, t1=query, details=details
                )
            )

        # --- single-process leg: sequential vs vectorized vs index ------
        for kind in INDEX_KINDS:
            for label, factory in self._FAMILIES:
                shadow: List[TreeNode] = list(corpus.trees)
                flt = factory().fit(shadow)
                store = FeatureStore(flt.required_q_levels() or (2,)).fit(shadow)
                matrices = store.matrices()
                q = getattr(flt, "q", None)
                if q is not None and q not in store.q_levels:
                    q = None
                index = build_candidate_index(kind, store, q)
                for step, entry in enumerate(corpus.service_schedule):
                    if entry[0] == "add":
                        shadow.append(entry[1])
                        flt.add(entry[1])
                        store.add(entry[1])
                        continue  # the index re-syncs at the next probe
                    _, query_kind, query, parameter = entry
                    outcome.checks += 1
                    problem = None
                    details: Dict = {
                        "index": kind,
                        "filter": label,
                        "kind": query_kind,
                        "step": step,
                        "parameter": parameter,
                    }
                    if query_kind == "range":
                        sequential, _ = sequential_range_query(
                            shadow, query, parameter
                        )
                        fast_answer, fast_stats = range_query(
                            shadow, query, parameter, flt, matrices=matrices
                        )
                        indexed, indexed_stats = range_query(
                            shadow, query, parameter, flt,
                            matrices=matrices, index=index,
                        )
                        if indexed != sequential:
                            problem = "range answers differ from sequential"
                            details["sequential"] = sequential
                        elif indexed_stats.candidates > fast_stats.candidates:
                            problem = (
                                f"index refined {indexed_stats.candidates} "
                                f"candidates, vectorized only "
                                f"{fast_stats.candidates}"
                            )
                    else:
                        k = min(int(parameter), len(shadow))
                        fast_answer, fast_stats = knn_query(
                            shadow, query, k, flt, matrices=matrices
                        )
                        indexed, indexed_stats = knn_query(
                            shadow, query, k, flt,
                            matrices=matrices, index=index,
                        )
                        if indexed != fast_answer:
                            problem = "knn answers differ from reference"
                        elif indexed_stats.candidates != fast_stats.candidates:
                            problem = (
                                f"index refined {indexed_stats.candidates} "
                                f"candidates, reference refined "
                                f"{fast_stats.candidates}"
                            )
                    if problem is not None:
                        details["reference"] = fast_answer
                        details["indexed"] = indexed
                        details["reference_candidates"] = fast_stats.candidates
                        details["indexed_candidates"] = indexed_stats.candidates
                        record(
                            f"{kind}/{label} {query_kind} at schedule step "
                            f"{step}: {problem}",
                            query,
                            details,
                        )

        # --- sharded leg: index workers vs loop reference ---------------
        from repro.search.database import TreeDatabase
        from repro.sharding.coordinator import ShardedTreeService
        from repro.sharding.worker import FILTER_FACTORIES

        for shards, partitioner, filter_name, kind in self._SHARD_CONFIGS:
            shadow = list(corpus.trees)
            service = ShardedTreeService(
                shadow,
                shards=shards,
                partitioner=partitioner,
                filter_name=filter_name,
                max_workers=1,
                candidate_source=kind,
            )
            try:
                for step, entry in enumerate(corpus.service_schedule):
                    if entry[0] == "add":
                        service.add(entry[1])
                        shadow.append(entry[1])
                        continue
                    _, query_kind, query, parameter = entry
                    outcome.checks += 1
                    reference = TreeDatabase(
                        list(shadow), flt=FILTER_FACTORIES[filter_name]()
                    )
                    if query_kind == "range":
                        served, stats = service.range(query, parameter)
                        expected, ref_stats = range_query(
                            reference.trees, query, parameter,
                            reference.filter, reference.counter,
                        )
                    else:
                        k = min(int(parameter), len(shadow))
                        served, stats = service.knn(query, k)
                        expected, ref_stats = knn_query(
                            reference.trees, query, k,
                            reference.filter, reference.counter,
                        )
                    problem = None
                    if served != expected:
                        problem = "answers differ"
                    elif stats.candidates > ref_stats.candidates:
                        problem = (
                            f"index shards refined {stats.candidates} "
                            f"candidates, loop refined {ref_stats.candidates}"
                        )
                    if problem is not None:
                        record(
                            f"{query_kind} over {shards} {partitioner}/"
                            f"{filter_name} {kind} shards at schedule step "
                            f"{step}: {problem}",
                            query,
                            {
                                "step": step,
                                "kind": query_kind,
                                "parameter": parameter,
                                "shards": shards,
                                "partitioner": partitioner,
                                "filter": filter_name,
                                "index": kind,
                                "served": served,
                                "expected": expected,
                                "served_candidates": stats.candidates,
                                "expected_candidates": ref_stats.candidates,
                            },
                        )
            finally:
                service.close()
        return outcome


# ----------------------------------------------------------------------
# obs:funnel-consistency — telemetry vs independent recount
# ----------------------------------------------------------------------
class FunnelConsistencyOracle(Oracle):
    """Funnel telemetry equals an independent survivor recount.

    For each checked query the oracle collects the funnel the search
    pipeline emits, then recounts every stage sequentially through the
    filter's ``funnel_components`` cascade and independently through the
    deployed one-pass ``refutes`` path.  All three views must agree, and
    the funnel's internal invariants (monotone survivors, refined drawn
    from the last stage, results ⊆ refined) must hold.
    """

    name = "obs:funnel-consistency"
    description = "funnel telemetry equals an independent survivor recount"

    def run(self, corpus: VerifyCorpus, distance: DistanceFn) -> OracleOutcome:
        from repro.obs.funnel import collect_funnels
        from repro.search.knn import knn_query
        from repro.search.range_query import range_query

        outcome = OracleOutcome(self.name)
        trees = list(corpus.trees)
        factories: List[Tuple[str, Callable[[], LowerBoundFilter]]] = [
            ("BiBranch", BinaryBranchFilter),
            (
                "Composite",
                lambda: MaxCompositeFilter(
                    [BranchCountFilter(), SizeDifferenceFilter(), HistogramFilter()]
                ),
            ),
        ]
        queries = [pair.t2 for pair in corpus.pairs[:6]]
        for label, factory in factories:
            flt = factory().fit(trees)
            for query in queries:
                query_signature = flt.signature(query)
                for threshold in (1.0, 3.0):
                    outcome.checks += 1
                    with collect_funnels() as sink:
                        matches, stats = range_query(trees, query, threshold, flt)
                    funnel = sink.funnels[0]
                    problems = funnel.check_invariants()
                    # independent sequential recount through the cascade
                    survivors = list(range(len(trees)))
                    recount: List[int] = []
                    for _, refute in flt.funnel_components():
                        survivors = [
                            index
                            for index in survivors
                            if not refute(
                                query_signature,
                                flt.data_signature(index),
                                threshold,
                            )
                        ]
                        recount.append(len(survivors))
                    # the deployed one-pass refutation path must agree
                    direct = sum(
                        1
                        for index in range(len(trees))
                        if not flt.refutes(
                            query_signature, flt.data_signature(index), threshold
                        )
                    )
                    telemetry = [stage.survivors for stage in funnel.stages]
                    final = recount[-1] if recount else len(trees)
                    if telemetry != recount:
                        problems.append(
                            f"telemetry survivors {telemetry} != recount {recount}"
                        )
                    if direct != final:
                        problems.append(
                            f"one-pass refutes kept {direct}, cascade kept {final}"
                        )
                    if funnel.refined != final:
                        problems.append(
                            f"funnel refined {funnel.refined} != survivors {final}"
                        )
                    if funnel.results != len(matches) or funnel.results != stats.results:
                        problems.append(
                            f"funnel results {funnel.results} != answer "
                            f"{len(matches)}"
                        )
                    if problems:
                        outcome.record(
                            Violation(
                                oracle=self.name,
                                message=(
                                    f"{label} range(τ={threshold:g}) funnel "
                                    f"inconsistent: {problems[0]}"
                                ),
                                t1=query,
                                details={
                                    "filter": label,
                                    "threshold": threshold,
                                    "problems": problems,
                                    "funnel": funnel.to_dict(),
                                },
                            )
                        )
                # k-NN: the funnel must mirror the stats and the answer
                outcome.checks += 1
                k = min(3, len(trees))
                with collect_funnels() as sink:
                    matches, stats = knn_query(trees, query, k, flt)
                funnel = sink.funnels[0]
                problems = funnel.check_invariants()
                if funnel.refined != stats.candidates:
                    problems.append(
                        f"funnel refined {funnel.refined} != stats candidates "
                        f"{stats.candidates}"
                    )
                if funnel.results != len(matches):
                    problems.append(
                        f"funnel results {funnel.results} != answer {len(matches)}"
                    )
                if problems:
                    outcome.record(
                        Violation(
                            oracle=self.name,
                            message=(
                                f"{label} knn(k={k}) funnel inconsistent: "
                                f"{problems[0]}"
                            ),
                            t1=query,
                            details={
                                "filter": label,
                                "k": k,
                                "problems": problems,
                                "funnel": funnel.to_dict(),
                            },
                        )
                    )
        return outcome


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_STORE_FILTERS: List[Tuple[str, Callable[[], LowerBoundFilter]]] = [
    ("BiBranch", BinaryBranchFilter),
    ("BiBranch3", lambda: BinaryBranchFilter(q=3)),
    ("BiBranchCount", BranchCountFilter),
    ("BiBranchCount3", lambda: BranchCountFilter(q=3)),
    ("Histo", HistogramFilter),
    (
        "HistoFolded",
        lambda: HistogramFilter(label_bins=4, degree_bins=4, height_cap=4),
    ),
    ("TraversalSED", TraversalStringFilter),
    ("SizeDiff", SizeDifferenceFilter),
    ("HistoLabel", LabelHistogramFilter),
    ("HistoDegree", DegreeHistogramFilter),
    ("HistoHeight", HeightHistogramFilter),
    (
        "Composite",
        lambda: MaxCompositeFilter(
            [BranchCountFilter(), SizeDifferenceFilter(), HistogramFilter()]
        ),
    ),
]

ORACLE_FACTORIES: Dict[str, Callable[[], Oracle]] = {}
for _label, _factory in _STORE_FILTERS:
    ORACLE_FACTORIES[f"bound:{_label}"] = (
        lambda _f=_factory, _l=_label: FilterBoundOracle(_f, _l)
    )
ORACLE_FACTORIES["bound:CostScaled"] = CostScaledBoundOracle
ORACLE_FACTORIES["bound:dominance"] = DominanceOracle
ORACLE_FACTORIES["editdist:metamorphic"] = EditScriptOracle
ORACLE_FACTORIES["metric:bdist"] = BranchMetricOracle
ORACLE_FACTORIES["features:packed-l1"] = PackedVectorOracle
ORACLE_FACTORIES["store:identity"] = lambda: StoreIdentityOracle(_STORE_FILTERS)
ORACLE_FACTORIES["storage:roundtrip"] = RoundTripOracle
ORACLE_FACTORIES["search:completeness"] = SearchCompletenessOracle
ORACLE_FACTORIES["search:vectorized-equivalence"] = VectorizedEquivalenceOracle
ORACLE_FACTORIES["search:index-completeness"] = IndexCompletenessOracle
ORACLE_FACTORIES["service:cache-transparency"] = ServiceCacheOracle
ORACLE_FACTORIES["service:shard-equivalence"] = ShardEquivalenceOracle
ORACLE_FACTORIES["shard:knn-optimality"] = ShardKnnOptimalityOracle
ORACLE_FACTORIES["obs:funnel-consistency"] = FunnelConsistencyOracle


def default_oracle_names() -> List[str]:
    """Every registered oracle, in registry order."""
    return list(ORACLE_FACTORIES)


def make_oracles(names: Optional[Sequence[str]] = None) -> List[Oracle]:
    """Instantiate oracles by name (all of them by default)."""
    if names is None:
        names = default_oracle_names()
    oracles = []
    for name in names:
        try:
            factory = ORACLE_FACTORIES[name]
        except KeyError:
            raise InvalidParameterError(
                f"unknown oracle {name!r} "
                f"(choose from {', '.join(sorted(ORACLE_FACTORIES))})"
            ) from None
        oracles.append(factory())
    return oracles
