"""Greedy counterexample shrinking by subtree deletion.

A violation found on two ~20-node corpus trees is hard to read; the same
violation on a 3-node pair is a unit test.  The shrinker exploits that every
oracle predicate is *re-evaluable*: given a predicate
``violates(t1, t2) -> bool``, it repeatedly deletes whole subtrees
(:func:`repro.trees.edits.prune_subtree`) from either tree, keeping each
deletion for which the violation persists, until no single deletion keeps
the predicate true — a 1-minimal counterexample with respect to subtree
removal, the same fixpoint notion delta debugging uses.

Candidate subtrees are tried **largest first**, so big irrelevant branches
vanish in one step and the loop converges in
``O(nodes · successful_prunes)`` predicate calls rather than quadratic.
A predicate that *raises* on a candidate (e.g. an invariant checker that
cannot process the mutated shape) counts as "violation did not persist":
shrinking must never escalate an inequality violation into a crash witness.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.trees.edits import prune_subtree
from repro.trees.node import TreeNode

__all__ = ["shrink_tree", "shrink_pair"]

PairPredicate = Callable[[TreeNode, TreeNode], bool]


class _Budget:
    """Mutable predicate-evaluation allowance shared across passes."""

    def __init__(self, steps: int) -> None:
        self.steps = steps

    def spend(self) -> bool:
        self.steps -= 1
        return self.steps >= 0

    @property
    def exhausted(self) -> bool:
        return self.steps <= 0


def _holds(predicate: PairPredicate, t1: TreeNode, t2: TreeNode) -> bool:
    # The one sanctioned blanket catch (RL008): a shrinking probe runs the
    # violation predicate on mutated trees that may break *any* invariant
    # the oracle's code path assumes (empty children, degenerate labels), so
    # a crash here must read as "candidate rejected", never as a new witness
    # — otherwise shrinking would replace a real counterexample with an
    # artifact of the shrinker itself.
    try:
        return bool(predicate(t1, t2))
    except Exception:  # repro-lint: disable=RL008
        return False


def _candidate_positions(tree: TreeNode) -> List[int]:
    """Non-root preorder positions, largest subtree first."""
    sized = [
        (node.size, position)
        for position, node in enumerate(tree.iter_preorder(), start=1)
        if position > 1
    ]
    sized.sort(reverse=True)
    return [position for _, position in sized]


def _shrink_side(
    first_side: bool,
    target: TreeNode,
    other: TreeNode,
    predicate: PairPredicate,
    budget: _Budget,
) -> Tuple[TreeNode, bool]:
    """Delete subtrees from ``target`` while the pair still violates.

    ``first_side`` says whether ``target`` is the pair's first element (the
    predicate is order-sensitive).  Returns the shrunk tree and whether any
    deletion was accepted.
    """
    changed = False
    progress = True
    while progress and not budget.exhausted:
        progress = False
        for position in _candidate_positions(target):
            if not budget.spend():
                break
            candidate = prune_subtree(target, position)
            pair = (candidate, other) if first_side else (other, candidate)
            if _holds(predicate, *pair):
                target = candidate
                changed = True
                progress = True
                break  # positions shifted; recompute candidates
    return target, changed


def shrink_pair(
    t1: TreeNode,
    t2: TreeNode,
    predicate: PairPredicate,
    max_steps: int = 2000,
) -> Tuple[Optional[TreeNode], Optional[TreeNode]]:
    """Greedily minimise a violating pair; returns the shrunk clones.

    ``predicate(t1, t2)`` must be True for the input pair (the violation);
    the result is a pair on which it is still True but on which no single
    subtree deletion keeps it True (unless the ``max_steps`` predicate-call
    budget ran out first — shrinking is best-effort, soundness lives in the
    predicate).  Returns ``(None, None)`` when the input pair does not
    violate to begin with, so callers can detect non-reproducible (flaky)
    predicates.
    """
    t1, t2 = t1.clone(), t2.clone()
    if not _holds(predicate, t1, t2):
        return None, None
    budget = _Budget(max_steps)
    # Alternate until neither side shrinks in a full pass: deleting from t1
    # can unlock deletions in t2 (e.g. bounds involving the size difference).
    while not budget.exhausted:
        t1, changed1 = _shrink_side(True, t1, t2, predicate, budget)
        t2, changed2 = _shrink_side(False, t2, t1, predicate, budget)
        if not changed1 and not changed2:
            break
    return t1, t2


def shrink_tree(
    tree: TreeNode,
    predicate: Callable[[TreeNode], bool],
    max_steps: int = 2000,
) -> Optional[TreeNode]:
    """Shrink a single-tree counterexample (wraps :func:`shrink_pair`)."""
    shrunk, _ = shrink_pair(
        tree, TreeNode("_"), lambda a, _b: predicate(a), max_steps=max_steps
    )
    return shrunk
