"""Verification corpora: synthetic trees plus edit-script perturbation pairs.

Two kinds of ground truth feed the oracles:

* **differential** — any pair of corpus trees can be checked against the
  reference Zhang–Shasha distance (expensive but exact);
* **metamorphic** — a pair built by applying ``k`` random edit operations
  from :mod:`repro.trees.edits` to a corpus tree has, *by construction*,
  ``EDist ≤ k`` (each operation costs at most one unit).  No reference
  implementation is needed for that bound, which makes it an independent
  check on the reference itself.

The corpus is fully determined by ``(seed, budget)``: generation goes
through a single :class:`random.Random` stream, so every violation a run
surfaces is reproducible from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.datasets.synthetic import SyntheticSpec, generate_dataset
from repro.exceptions import InvalidParameterError
from repro.trees.edits import random_edit_script
from repro.trees.node import TreeNode

__all__ = ["BudgetSpec", "BUDGETS", "TreePair", "VerifyCorpus", "build_corpus"]


@dataclass(frozen=True)
class BudgetSpec:
    """How much work one verification run performs.

    The q-level and positional bounds need branch collisions to be
    interesting, so the corpus mixes a small-alphabet spec (lots of shared
    branches) with a larger-alphabet one (mostly disjoint vocabularies).
    """

    #: trees kept in the corpus (split across the two synthetic specs)
    corpus_trees: int
    #: (base tree, perturbed tree, k) metamorphic pairs
    perturbation_pairs: int
    #: maximum edit-script length for perturbation pairs
    max_edit_ops: int
    #: random cross pairs (no construction bound; differential only)
    random_pairs: int
    #: interleaved add/query steps driven through TreeSearchService
    service_steps: int
    #: mean tree size of the synthetic specs
    tree_size_mean: float = 14.0


BUDGETS: Dict[str, BudgetSpec] = {
    # tier-1: a few seconds of pure-Python Zhang–Shasha
    "small": BudgetSpec(
        corpus_trees=16,
        perturbation_pairs=10,
        max_edit_ops=4,
        random_pairs=8,
        service_steps=12,
    ),
    "medium": BudgetSpec(
        corpus_trees=40,
        perturbation_pairs=30,
        max_edit_ops=6,
        random_pairs=24,
        service_steps=30,
        tree_size_mean=18.0,
    ),
    # CI soak: minutes, not hours
    "large": BudgetSpec(
        corpus_trees=80,
        perturbation_pairs=80,
        max_edit_ops=10,
        random_pairs=60,
        service_steps=60,
        tree_size_mean=24.0,
    ),
}


@dataclass(frozen=True)
class TreePair:
    """One pair of trees under test.

    ``max_distance`` is the construction-time upper bound on
    ``EDist(t1, t2)`` (the perturbation script length), or ``None`` for
    pairs without one (random cross pairs, identity pairs).
    """

    t1: TreeNode
    t2: TreeNode
    origin: str
    max_distance: Optional[int] = None


@dataclass
class VerifyCorpus:
    """Everything one verification run iterates over."""

    seed: int
    budget: str
    trees: List[TreeNode]
    pairs: List[TreePair]
    labels: List[str]
    #: query/add schedule for the stateful service oracle:
    #: ("add", tree) or ("query", kind, tree, parameter)
    service_schedule: List[Tuple] = field(default_factory=list)

    @property
    def spec(self) -> BudgetSpec:
        return BUDGETS[self.budget]


def _resolve_budget(budget: str) -> BudgetSpec:
    try:
        return BUDGETS[budget]
    except KeyError:
        raise InvalidParameterError(
            f"unknown budget {budget!r} (choose from {sorted(BUDGETS)})"
        ) from None


def build_corpus(seed: int = 0, budget: str = "small") -> VerifyCorpus:
    """Build the deterministic verification corpus for ``(seed, budget)``."""
    spec = _resolve_budget(budget)
    rng = random.Random(seed)

    # Two regimes: a tiny alphabet (maximal branch collisions — the hard
    # case for positional matching) and a wider one (sparse vocabularies —
    # the hard case for packed/extra handling).
    dense = SyntheticSpec(
        fanout_mean=2.5,
        fanout_stddev=0.8,
        size_mean=spec.tree_size_mean,
        size_stddev=3.0,
        label_count=3,
        decay=0.15,
    )
    sparse = SyntheticSpec(
        fanout_mean=3.0,
        fanout_stddev=1.0,
        size_mean=spec.tree_size_mean,
        size_stddev=4.0,
        label_count=24,
        decay=0.1,
    )
    half = spec.corpus_trees // 2
    trees = generate_dataset(dense, count=half, seed_count=3, rng=rng)
    trees += generate_dataset(
        sparse, count=spec.corpus_trees - half, seed_count=3, rng=rng
    )
    # degenerate shapes the generators rarely emit but the theorems cover
    trees.append(TreeNode("l0"))  # single node
    chain = TreeNode("l0")
    tip = chain
    for i in range(1, 5):
        tip = tip.add_child(TreeNode(f"l{i % 3}"))
    trees.append(chain)  # pure path

    labels = sorted({str(node.label) for tree in trees for node in tree.iter_preorder()})

    pairs: List[TreePair] = []
    for _ in range(spec.perturbation_pairs):
        base = rng.choice(trees)
        k = rng.randint(1, spec.max_edit_ops)
        perturbed, script = random_edit_script(base, k, labels, rng)
        pairs.append(
            TreePair(base, perturbed, origin="perturbation", max_distance=len(script))
        )
    for _ in range(spec.random_pairs):
        t1, t2 = rng.choice(trees), rng.choice(trees)
        pairs.append(TreePair(t1, t2, origin="random"))
    # identity pairs: every bound must be 0-consistent on clones
    for tree in rng.sample(trees, min(3, len(trees))):
        pairs.append(TreePair(tree, tree.clone(), origin="identity", max_distance=0))

    schedule: List[Tuple] = []
    service_pool = list(trees)
    for step in range(spec.service_steps):
        roll = rng.random()
        if roll < 0.3:
            base = rng.choice(service_pool)
            mutated, _ = random_edit_script(
                base, rng.randint(1, spec.max_edit_ops), labels, rng
            )
            schedule.append(("add", mutated))
        elif roll < 0.65:
            query = rng.choice(service_pool)
            schedule.append(("query", "range", query, float(rng.randint(1, 4))))
        else:
            query = rng.choice(service_pool)
            schedule.append(("query", "knn", query, rng.randint(1, 3)))

    return VerifyCorpus(
        seed=seed,
        budget=budget,
        trees=trees,
        pairs=pairs,
        labels=labels,
        service_schedule=schedule,
    )
