"""Verification reporting: per-oracle outcomes, violations, JSON snapshots.

Mirrors the :class:`~repro.service.metrics.ServiceMetrics` surface: every
oracle folds its work into an :class:`OracleOutcome` (checks performed,
violations found, wall time), the run aggregates them in a
:class:`VerifyReport`, and ``snapshot()`` / ``to_json()`` produce the
plain-dict / JSON views the CLI and the CI artifact uploader consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.trees.node import TreeNode
from repro.trees.parse import to_bracket

__all__ = ["Violation", "OracleOutcome", "VerifyReport"]

#: Re-evaluates one violation on a substituted pair of trees; drives the
#: shrinker.  Not serialised — repro files carry the oracle name instead.
PairPredicate = Callable[[TreeNode, TreeNode], bool]


@dataclass
class Violation:
    """One broken invariant, with everything needed to reproduce it.

    ``t1``/``t2`` are the trees the oracle failed on (``t2`` may be absent
    for single-tree or stateful checks); ``shrunk1``/``shrunk2`` are filled
    in by the runner when the violation carries a :attr:`predicate`.
    """

    oracle: str
    message: str
    t1: Optional[TreeNode] = None
    t2: Optional[TreeNode] = None
    details: Dict[str, object] = field(default_factory=dict)
    predicate: Optional[PairPredicate] = None
    shrunk1: Optional[TreeNode] = None
    shrunk2: Optional[TreeNode] = None

    @property
    def shrunk_size(self) -> Optional[int]:
        """Total node count of the shrunk counterexample (None if unshrunk)."""
        if self.shrunk1 is None:
            return None
        size = self.shrunk1.size
        if self.shrunk2 is not None:
            size += self.shrunk2.size
        return size

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "oracle": self.oracle,
            "message": self.message,
            "details": dict(self.details),
        }
        if self.t1 is not None:
            record["t1"] = to_bracket(self.t1)
        if self.t2 is not None:
            record["t2"] = to_bracket(self.t2)
        if self.shrunk1 is not None:
            record["shrunk1"] = to_bracket(self.shrunk1)
            if self.shrunk2 is not None:
                record["shrunk2"] = to_bracket(self.shrunk2)
            record["shrunk_size"] = self.shrunk_size
        return record


@dataclass
class OracleOutcome:
    """One oracle's tally over a corpus."""

    name: str
    checks: int = 0
    violations: List[Violation] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def record(self, violation: Violation) -> None:
        self.violations.append(violation)

    def to_dict(self) -> Dict[str, object]:
        return {
            "checks": self.checks,
            "violations": len(self.violations),
            "seconds": self.seconds,
            "ok": self.ok,
        }


class VerifyReport:
    """Aggregate of one verification run (ServiceMetrics-style snapshots)."""

    def __init__(self, seed: int, budget: str) -> None:
        self.seed = seed
        self.budget = budget
        self.outcomes: List[OracleOutcome] = []

    def add(self, outcome: OracleOutcome) -> None:
        self.outcomes.append(outcome)

    @property
    def ok(self) -> bool:
        """True when no oracle found a violation."""
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def checks(self) -> int:
        return sum(outcome.checks for outcome in self.outcomes)

    @property
    def violations(self) -> List[Violation]:
        return [v for outcome in self.outcomes for v in outcome.violations]

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view as a plain JSON-serialisable dict."""
        return {
            "seed": self.seed,
            "budget": self.budget,
            "ok": self.ok,
            "checks": self.checks,
            "violations": len(self.violations),
            "oracles": {
                outcome.name: outcome.to_dict() for outcome in self.outcomes
            },
            "violation_records": [v.to_dict() for v in self.violations],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`snapshot` serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def format(self) -> str:
        """Human-readable per-oracle table plus violation summaries."""
        width = max((len(o.name) for o in self.outcomes), default=6)
        lines = [
            f"verify seed={self.seed} budget={self.budget}",
            f"{'oracle'.ljust(width)}  {'checks':>7}  {'bad':>4}  seconds",
        ]
        for outcome in self.outcomes:
            lines.append(
                f"{outcome.name.ljust(width)}  {outcome.checks:>7}  "
                f"{len(outcome.violations):>4}  {outcome.seconds:.2f}"
            )
        lines.append(
            f"{'TOTAL'.ljust(width)}  {self.checks:>7}  "
            f"{len(self.violations):>4}  "
            f"{sum(o.seconds for o in self.outcomes):.2f}"
        )
        for violation in self.violations:
            lines.append(f"VIOLATION [{violation.oracle}] {violation.message}")
            if violation.shrunk1 is not None:
                shrunk = to_bracket(violation.shrunk1)
                if violation.shrunk2 is not None:
                    shrunk += f"  vs  {to_bracket(violation.shrunk2)}"
                lines.append(
                    f"  shrunk ({violation.shrunk_size} nodes): {shrunk}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violations"
        return (
            f"VerifyReport(seed={self.seed}, budget={self.budget!r}, "
            f"{self.checks} checks, {status})"
        )
