"""Persistence for the inverted file index.

Building the IFI is linear but still the dominant setup cost for large
collections; a database system keeps it on disk.  This module serializes an
:class:`~repro.core.inverted_file.InvertedFileIndex` to a JSON document and
restores it losslessly (round-trip asserted in the tests).

Branch keys contain the ε sentinel and, for q-level indexes, nested label
tuples; they are encoded with a small tagged scheme:

* ``["e"]``            — the ε padding label;
* ``["s", "text"]``    — a string label;
* ``["i", 42]`` / ``["f", 1.5]`` / ``["b", true]`` / ``["n"]`` — other
  JSON-representable scalars;
* a branch is the list of its encoded labels (2-level triples and q-level
  tuples alike).

Only JSON-representable labels are supported; exotic hashables raise
:class:`~repro.exceptions.TreeParseError` at save time.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, List, Union

from repro.core.branches import BinaryBranch
from repro.core.inverted_file import InvertedFileIndex, Posting
from repro.core.qlevel import QLevelBranch
from repro.exceptions import TreeParseError
from repro.trees.binary import EPSILON

if TYPE_CHECKING:  # the feature layer sits above this module
    from repro.features.store import FeatureStore

__all__ = ["save_index", "load_index", "save_features", "load_features"]

_FORMAT = "repro-ifi"
_VERSION = 1

PathLike = Union[str, os.PathLike]


def _encode_label(label: Any) -> List:
    if label is EPSILON:
        return ["e"]
    if isinstance(label, str):
        return ["s", label]
    if isinstance(label, bool):  # before int: bool is an int subtype
        return ["b", label]
    if isinstance(label, int):
        return ["i", label]
    if isinstance(label, float):
        return ["f", label]
    if label is None:
        return ["n"]
    raise TreeParseError(
        f"cannot serialize label of type {type(label).__name__}"
    )


def _decode_label(encoded: List) -> Any:
    tag = encoded[0]
    if tag == "e":
        return EPSILON
    if tag in ("s", "b", "i", "f"):
        return encoded[1]
    if tag == "n":
        return None
    raise TreeParseError(f"unknown label tag {tag!r}")


def _encode_branch(branch: Any) -> List:
    if isinstance(branch, BinaryBranch):
        labels = tuple(branch)
    elif isinstance(branch, QLevelBranch):
        labels = branch.labels
    else:
        raise TreeParseError(f"unknown branch type {type(branch).__name__}")
    return [_encode_label(label) for label in labels]


def _decode_branch(encoded: List, q: int) -> Any:
    labels = tuple(_decode_label(item) for item in encoded)
    if q == 2:
        return BinaryBranch(*labels)
    return QLevelBranch(labels)


def save_index(index: InvertedFileIndex, path: PathLike) -> None:
    """Serialize an index to ``path`` as JSON."""
    document = {
        "format": _FORMAT,
        "version": _VERSION,
        "q": index.q,
        "tree_sizes": {
            str(tree_id): size for tree_id, size in index._tree_sizes.items()
        },
        "vocabulary": [
            {
                "branch": _encode_branch(branch),
                "postings": [
                    {
                        "tree": posting.tree_id,
                        "pre": posting.pre_positions,
                        "post": posting.post_positions,
                    }
                    for posting in postings
                ],
            }
            for branch, postings in index._lists.items()
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


def load_index(path: PathLike) -> InvertedFileIndex:
    """Restore an index written by :func:`save_index`."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("format") != _FORMAT:
        raise TreeParseError(f"{path}: not a repro inverted-file index")
    if document.get("version") != _VERSION:
        raise TreeParseError(
            f"{path}: unsupported index version {document.get('version')!r}"
        )
    index = InvertedFileIndex(q=document["q"])
    index._tree_sizes = {
        int(tree_id): size
        for tree_id, size in document["tree_sizes"].items()
    }
    for entry in document["vocabulary"]:
        branch = _decode_branch(entry["branch"], index.q)
        postings = []
        for raw in entry["postings"]:
            posting = Posting(raw["tree"])
            posting.pre_positions = list(raw["pre"])
            posting.post_positions = list(raw["post"])
            posting.pairs = list(zip(raw["pre"], raw["post"]))
            postings.append(posting)
        index._lists[branch] = postings
    return index


def save_features(store: "FeatureStore", path: PathLike) -> None:
    """Serialize a :class:`~repro.features.store.FeatureStore` to ``path``.

    Convenience re-export of
    :func:`repro.features.io.save_feature_plane` (imported lazily — the
    feature layer sits above this module).
    """
    from repro.features.io import save_feature_plane

    save_feature_plane(store, path)


def load_features(path: PathLike) -> "FeatureStore":
    """Restore a feature store written by :func:`save_features`."""
    from repro.features.io import load_feature_plane

    return load_feature_plane(path)
