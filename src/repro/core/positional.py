"""Positional binary branch distance and the optimistic bound search (§4.2).

Beyond branch *counts*, the positions of branches carry structural evidence:
by Proposition 4.1, in any edit mapping of cost ≤ ``l`` a node of ``T1`` can
only map to a node of ``T2`` whose preorder (and postorder) number differs by
at most ``l``.  The *positional binary branch distance* therefore only lets
two identical branches cancel out when their positions are within a range
``pr``:

    PosBDist(T1, T2, pr) = Σ_j (b1j + b2j − 2 |Mmax(T1, T2, j, pr)|)

and Proposition 4.2 gives:  ``PosBDist(T1, T2, l) > 5·l  ⟹  EDist > l``.

``SearchLBound`` turns this refutation test into a numeric lower bound: the
smallest ``pr`` with ``PosBDist(pr) ≤ 5·pr`` lower-bounds the edit distance,
and it always dominates both ``⌈BDist/5⌉`` and the size difference.

**Mmax approximation.**  The paper stores, per branch, the preorder position
sequence and the postorder position sequence *independently sorted*, and
computes ``|Mmax|`` from them in linear time.  We do the same: a two-pointer
greedy maximum matching on each dimension (optimal for the one-dimensional
``|x − y| ≤ pr`` constraint because the compatibility graph is an interval
bigraph), then ``min`` of the two sizes.  Relative to the exact matching
under *both* constraints simultaneously this can only be larger, hence
``PosBDist`` can only be smaller, hence the lower bound stays **sound** —
any over-match weakens but never breaks the filter.  An exact bipartite
matcher (Kuhn's algorithm) is provided for validation (``exact=True``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Sequence, Tuple, Union

from repro.core.branches import iter_positional_branches
from repro.core.qlevel import iter_positional_qlevel_branches, qlevel_bound_factor
from repro.exceptions import SignatureMismatchError
from repro.trees.node import TreeNode

__all__ = [
    "PositionalProfile",
    "positional_profile",
    "greedy_interval_matching",
    "exact_position_matching",
    "positional_branch_distance",
    "search_lower_bound",
]

BranchKey = Hashable


class PositionalProfile:
    """Per-tree positional index: branch → sorted position sequences.

    This is the per-record slice of the extended inverted file of
    Algorithm 1 — for every branch, the number of occurrences plus the
    ascending preorder and postorder position lists.
    """

    __slots__ = ("pre_positions", "post_positions", "pairs", "tree_size", "q")

    def __init__(
        self,
        pre_positions: Dict[BranchKey, List[int]],
        post_positions: Dict[BranchKey, List[int]],
        pairs: Dict[BranchKey, List[Tuple[int, int]]],
        tree_size: int,
        q: int,
    ) -> None:
        self.pre_positions = pre_positions
        self.post_positions = post_positions
        self.pairs = pairs
        self.tree_size = tree_size
        self.q = q

    def count(self, branch: BranchKey) -> int:
        """Occurrences of ``branch`` in the tree."""
        positions = self.pre_positions.get(branch)
        return 0 if positions is None else len(positions)

    @property
    def branches(self) -> List[BranchKey]:
        """The distinct branches of the tree."""
        return list(self.pre_positions)

    def __repr__(self) -> str:
        return (
            f"PositionalProfile(q={self.q}, branches={len(self.pre_positions)}, "
            f"tree_size={self.tree_size})"
        )


def positional_profile(tree: TreeNode, q: int = 2) -> PositionalProfile:
    """Build the positional branch profile of a tree in one traversal."""
    if q == 2:
        items = iter_positional_branches(tree)
    else:
        qlevel_bound_factor(q)
        items = iter_positional_qlevel_branches(tree, q)
    pre: Dict[BranchKey, List[int]] = defaultdict(list)
    post: Dict[BranchKey, List[int]] = defaultdict(list)
    pairs: Dict[BranchKey, List[Tuple[int, int]]] = defaultdict(list)
    size = 0
    for positional in items:
        size += 1
        pre[positional.branch].append(positional.pre)
        post[positional.branch].append(positional.post)
        pairs[positional.branch].append((positional.pre, positional.post))
    for positions in pre.values():
        positions.sort()
    for positions in post.values():
        positions.sort()
    return PositionalProfile(dict(pre), dict(post), dict(pairs), size, q)


def greedy_interval_matching(
    a: Sequence[int], b: Sequence[int], pr: int
) -> int:
    """Maximum matching size between sorted sequences with ``|x−y| ≤ pr``.

    Two-pointer greedy; optimal because compatibility intervals are sorted
    on both sides (matching in an interval bigraph is solved greedily).
    Linear in ``len(a) + len(b)``.
    """
    i = j = matched = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        delta = a[i] - b[j]
        if -pr <= delta <= pr:
            matched += 1
            i += 1
            j += 1
        elif delta < -pr:
            i += 1
        else:
            j += 1
    return matched


def exact_position_matching(
    pairs_a: Sequence[Tuple[int, int]],
    pairs_b: Sequence[Tuple[int, int]],
    pr: int,
) -> int:
    """Exact maximum matching under *both* position constraints.

    ``(pre, post)`` occurrence ``u`` may match occurrence ``v`` iff
    ``|pre_u − pre_v| ≤ pr`` and ``|post_u − post_v| ≤ pr``.  Kuhn's
    augmenting-path algorithm; only used for validation and experiments
    (O(V·E) per branch), never on the hot path.
    """
    adjacency: List[List[int]] = []
    for pre_a, post_a in pairs_a:
        row = [
            idx
            for idx, (pre_b, post_b) in enumerate(pairs_b)
            if abs(pre_a - pre_b) <= pr and abs(post_a - post_b) <= pr
        ]
        adjacency.append(row)
    match_b: List[int] = [-1] * len(pairs_b)

    def try_augment(u: int, visited: List[bool]) -> bool:
        for v in adjacency[u]:
            if visited[v]:
                continue
            visited[v] = True
            if match_b[v] == -1 or try_augment(match_b[v], visited):
                match_b[v] = u
                return True
        return False

    matched = 0
    for u in range(len(pairs_a)):
        if try_augment(u, [False] * len(pairs_b)):
            matched += 1
    return matched


def positional_branch_distance(
    p1: Union[TreeNode, PositionalProfile],
    p2: Union[TreeNode, PositionalProfile],
    pr: int,
    q: int = 2,
    exact: bool = False,
) -> int:
    """``PosBDist(T1, T2, pr)`` (Definition 6).

    Accepts trees or prebuilt :class:`PositionalProfile` objects.  With
    ``exact=True`` the true two-constraint maximum matching is used instead
    of the paper's linear-time approximation (see module docstring).

    >>> from repro.trees import parse_bracket
    >>> t1, t2 = parse_bracket("a(b,c)"), parse_bracket("a(b,c)")
    >>> positional_branch_distance(t1, t2, pr=0)
    0
    """
    profile1 = p1 if isinstance(p1, PositionalProfile) else positional_profile(p1, q)
    profile2 = p2 if isinstance(p2, PositionalProfile) else positional_profile(p2, q)
    if profile1.q != profile2.q:
        raise SignatureMismatchError("profiles built with different branch levels")
    total = 0
    keys = set(profile1.pre_positions) | set(profile2.pre_positions)
    for key in keys:
        count1 = profile1.count(key)
        count2 = profile2.count(key)
        if count1 == 0 or count2 == 0:
            total += count1 + count2
            continue
        if exact:
            matched = exact_position_matching(
                profile1.pairs[key], profile2.pairs[key], pr
            )
        else:
            matched_pre = greedy_interval_matching(
                profile1.pre_positions[key], profile2.pre_positions[key], pr
            )
            matched_post = greedy_interval_matching(
                profile1.post_positions[key], profile2.post_positions[key], pr
            )
            matched = min(matched_pre, matched_post)
        total += count1 + count2 - 2 * matched
    return total


def search_lower_bound(
    p1: Union[TreeNode, PositionalProfile],
    p2: Union[TreeNode, PositionalProfile],
    q: int = 2,
    exact: bool = False,
) -> int:
    """The optimistic edit-distance bound ``pr_opt`` (function SearchLBound).

    Binary-searches the smallest positional range ``pr`` in
    ``[||T1|−|T2||, max(|T1|,|T2|)]`` satisfying
    ``PosBDist(pr) ≤ [4(q−1)+1]·pr``; that value lower-bounds
    ``EDist(T1, T2)``.  The predicate is monotone because ``PosBDist`` is
    non-increasing and the right-hand side increasing in ``pr``.

    Guaranteed to dominate the plain count bound: at the returned ``pr``,
    ``factor·pr ≥ PosBDist(pr) ≥ BDist``, hence ``pr ≥ ⌈BDist/factor⌉``.

    >>> from repro.trees import parse_bracket
    >>> search_lower_bound(parse_bracket("a(b,c)"), parse_bracket("a(b,c)"))
    0
    """
    profile1 = p1 if isinstance(p1, PositionalProfile) else positional_profile(p1, q)
    profile2 = p2 if isinstance(p2, PositionalProfile) else positional_profile(p2, q)
    if profile1.q != profile2.q:
        raise SignatureMismatchError("profiles built with different branch levels")
    factor = qlevel_bound_factor(profile1.q)

    # The branches unique to one tree contribute a constant to PosBDist for
    # every pr; precompute it and keep only the shared branches' position
    # sequences for the per-pr matching work (the binary search evaluates
    # PosBDist O(log) times, so this hoisting matters on the query path).
    pre1, pre2 = profile1.pre_positions, profile2.pre_positions
    constant = 0
    shared: List[Tuple[List[int], List[int], List[int], List[int], int]] = []
    for key, positions in pre1.items():
        other = pre2.get(key)
        if other is None:
            constant += len(positions)
        else:
            shared.append(
                (
                    positions,
                    other,
                    profile1.post_positions[key],
                    profile2.post_positions[key],
                    len(positions) + len(other),
                )
            )
    for key, positions in pre2.items():
        if key not in pre1:
            constant += len(positions)
    shared_keys = [key for key in pre1 if key in pre2]

    def satisfied(pr: int) -> bool:
        if exact:
            distance = constant
            for key in shared_keys:
                matched = exact_position_matching(
                    profile1.pairs[key], profile2.pairs[key], pr
                )
                distance += (
                    len(pre1[key]) + len(pre2[key]) - 2 * matched
                )
            return distance <= factor * pr
        budget = factor * pr - constant
        if budget < 0:
            return False
        distance = constant
        for seq_pre1, seq_pre2, seq_post1, seq_post2, total in shared:
            matched = greedy_interval_matching(seq_pre1, seq_pre2, pr)
            matched_post = greedy_interval_matching(seq_post1, seq_post2, pr)
            if matched_post < matched:
                matched = matched_post
            distance += total - 2 * matched
            if distance > factor * pr:
                return False
        return distance <= factor * pr

    low = abs(profile1.tree_size - profile2.tree_size)
    high = max(profile1.tree_size, profile2.tree_size)
    if satisfied(low):
        return low
    # invariant: satisfied(high) is true — at pr = max sizes every pair of
    # identical branches is within range, so PosBDist = BDist ≤ factor·high
    # (BDist ≤ |T1| + |T2| ≤ 2·high ≤ factor·high for factor ≥ 2).
    result = high
    low += 1
    while low <= high:
        mid = (low + high) // 2
        if satisfied(mid):
            result = mid
            high = mid - 1
        else:
            low = mid + 1
    return result
