"""Binary branches (paper Definition 2) and their extraction.

A *binary branch* ``BiB(u)`` is the one-level branch structure of an original
node ``u`` in the normalized binary tree representation ``B(T)``: the triple

    (label(u), label(left child in B(T)), label(right child in B(T)))

where the left child is ``u``'s **first child** in ``T``, the right child is
``u``'s **next sibling** in ``T``, and missing positions are the ε padding
label.  By Lemma 3.1 each node appears in at most two branches, which is what
caps the damage a single edit operation can do (Theorem 3.2).

Extraction works directly on ``T`` through the left-child/right-sibling
correspondence — building ``B(T)`` explicitly is not necessary (the
equivalence is asserted by the test suite via
:func:`branches_via_binary_tree`).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Tuple

from repro.trees.binary import (
    EPSILON,
    BinaryTreeNode,
    normalize_binary,
    tree_to_binary,
)
from repro.trees.node import Label, TreeNode

__all__ = [
    "BinaryBranch",
    "PositionalBranch",
    "iter_branches",
    "iter_positional_branches",
    "branches_via_binary_tree",
]


class BinaryBranch(NamedTuple):
    """A two-level binary branch ``(root, left, right)``.

    ``left``/``right`` are ε (:data:`repro.trees.binary.EPSILON`) when the
    node has no first child / no next sibling.
    """

    root: Label
    left: Label
    right: Label

    def __str__(self) -> str:
        return f"{self.root}({self.left},{self.right})"


class PositionalBranch(NamedTuple):
    """A binary branch with the positions of its root node in ``T``.

    ``pre``/``post`` are the 1-based preorder and postorder numbers of the
    branch's root node — the annotations beside each node in the paper's
    Figure 2.  (The preorder of ``T`` equals the preorder of ``B(T)`` and the
    postorder of ``T`` equals the inorder of ``B(T)``, so either view gives
    the same numbers.)
    """

    branch: BinaryBranch
    pre: int
    post: int


def _branch_of(node: TreeNode) -> BinaryBranch:
    first = node.first_child
    sibling = node.next_sibling
    return BinaryBranch(
        node.label,
        EPSILON if first is None else first.label,
        EPSILON if sibling is None else sibling.label,
    )


def iter_branches(tree: TreeNode) -> Iterator[BinaryBranch]:
    """Yield the binary branch of every node, in preorder of ``T``.

    >>> from repro.trees import parse_bracket
    >>> [str(b) for b in iter_branches(parse_bracket("a(b,c)"))]
    ['a(b,ε)', 'b(ε,c)', 'c(ε,ε)']
    """
    for node in tree.iter_preorder():
        yield _branch_of(node)


def iter_positional_branches(tree: TreeNode) -> Iterator[PositionalBranch]:
    """Yield ``(branch, pre, post)`` for every node.

    Both traversal numbers are produced in a single pass: preorder numbers
    are assigned on the way down, postorder numbers on the way back up, using
    an explicit stack (safe for deep trees).
    """
    pre_counter = 0
    post_counter = 0
    # stack holds (node, expanded?, pre); pre is assigned at first visit
    stack: List[Tuple[TreeNode, bool, int]] = [(tree, False, 0)]
    while stack:
        node, expanded, pre = stack.pop()
        if expanded:
            post_counter += 1
            yield PositionalBranch(_branch_of(node), pre, post_counter)
            continue
        pre_counter += 1
        stack.append((node, True, pre_counter))
        for child in reversed(node.children):
            stack.append((child, False, 0))
    assert pre_counter == post_counter


def branches_via_binary_tree(tree: TreeNode) -> List[BinaryBranch]:
    """Extract branches by explicitly building the normalized ``B(T)``.

    Reference implementation matching the paper's construction verbatim;
    used by the tests to validate the direct extraction of
    :func:`iter_branches`.  Returned in preorder of ``B(T)`` (which equals
    preorder of ``T``).
    """
    binary = normalize_binary(tree_to_binary(tree))
    out: List[BinaryBranch] = []
    stack: List[BinaryTreeNode] = [binary]
    while stack:
        node = stack.pop()
        if node.is_epsilon:
            continue
        left = node.left
        right = node.right
        assert left is not None and right is not None  # normalized
        out.append(
            BinaryBranch(
                node.label,
                EPSILON if left.is_epsilon else left.label,
                EPSILON if right.is_epsilon else right.label,
            )
        )
        stack.append(right)
        stack.append(left)
    return out
