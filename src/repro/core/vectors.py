"""Binary branch vectors and the binary branch distance (Definitions 3–4).

The *binary branch vector* ``BRV(T)`` records how many times each branch of
the dataset's branch alphabet Γ occurs in ``T``.  Since any single tree
touches at most ``|T|`` of the ``|Γ|`` dimensions, vectors are stored
sparsely (a counting dict); the L1 distance

    BDist(T1, T2) = Σ_i |b_i − b'_i|

is computed over the union of non-zero dimensions in ``O(|T1| + |T2|)``.

The same representation serves the q-level generalization — the branch keys
are simply q-level label tuples instead of triples.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Mapping, Union

from repro.core.branches import iter_branches
from repro.core.qlevel import iter_qlevel_branches, qlevel_bound_factor
from repro.exceptions import SignatureMismatchError
from repro.trees.node import TreeNode

__all__ = ["BranchVector", "branch_vector", "branch_distance"]

BranchKey = Hashable


class BranchVector:
    """A sparse branch-count vector for one tree.

    Attributes
    ----------
    counts:
        Mapping from branch key to number of occurrences.
    tree_size:
        ``|T|`` — equals the total count since every node roots one branch.
    q:
        The branch level this vector was built with.
    """

    __slots__ = ("counts", "tree_size", "q")

    def __init__(self, counts: Mapping[BranchKey, int], tree_size: int, q: int) -> None:
        self.counts: Dict[BranchKey, int] = dict(counts)
        self.tree_size = tree_size
        self.q = q

    @property
    def dimensions(self) -> int:
        """Number of non-zero dimensions (distinct branches in the tree)."""
        return len(self.counts)

    def l1_distance(self, other: "BranchVector") -> int:
        """``BDist`` — the L1 distance between two branch vectors.

        Raises :class:`~repro.exceptions.SignatureMismatchError` (a
        ``ValueError`` subclass) when the vectors were built with different
        branch levels (the embedding spaces are incomparable).
        """
        if self.q != other.q:
            raise SignatureMismatchError(
                f"cannot compare q={self.q} and q={other.q} branch vectors"
            )
        mine, theirs = self.counts, other.counts
        if len(mine) > len(theirs):
            mine, theirs = theirs, mine
        total = 0
        for key, count in mine.items():
            total += abs(count - theirs.get(key, 0))
        for key, count in theirs.items():
            if key not in mine:
                total += count
        return total

    def overlap(self, other: "BranchVector") -> int:
        """Number of shared branches (multiset intersection size)."""
        if self.q != other.q:
            raise SignatureMismatchError("branch levels differ")
        mine, theirs = self.counts, other.counts
        if len(mine) > len(theirs):
            mine, theirs = theirs, mine
        return sum(min(count, theirs.get(key, 0)) for key, count in mine.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BranchVector):
            return NotImplemented
        return self.q == other.q and self.counts == other.counts

    def __hash__(self) -> int:
        return hash((self.q, frozenset(self.counts.items())))

    def __repr__(self) -> str:
        return (
            f"BranchVector(q={self.q}, dimensions={self.dimensions}, "
            f"tree_size={self.tree_size})"
        )


def branch_vector(tree: TreeNode, q: int = 2) -> BranchVector:
    """Build the (q-level) binary branch vector of a tree.

    >>> from repro.trees import parse_bracket
    >>> branch_vector(parse_bracket("a(b,c)")).tree_size
    3
    """
    if q == 2:
        counts = Counter(iter_branches(tree))
    else:
        qlevel_bound_factor(q)  # validate
        counts = Counter(iter_qlevel_branches(tree, q))
    return BranchVector(counts, tree.size, q)


def branch_distance(
    t1: Union[TreeNode, BranchVector],
    t2: Union[TreeNode, BranchVector],
    q: int = 2,
) -> int:
    """``BDist(T1, T2)`` — accepts trees or prebuilt vectors.

    >>> from repro.trees import parse_bracket
    >>> branch_distance(parse_bracket("a(b,c)"), parse_bracket("a(b,d)"))
    4
    """
    v1 = t1 if isinstance(t1, BranchVector) else branch_vector(t1, q)
    v2 = t2 if isinstance(t2, BranchVector) else branch_vector(t2, q)
    return v1.l1_distance(v2)
