"""Dense feature matrices from branch vectors (numpy interoperability).

The paper's embedding turns trees into points of an L1 vector space; this
module materializes a whole collection as an explicit ``(n_trees, |Γ|)``
matrix so that downstream numeric tooling (clustering, classification,
nearest-neighbor libraries) can consume it directly.  The column order is
the lexicographic order of the branch alphabet Γ — the convention of the
paper's Figure 3.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

import numpy as np

from repro.core.vectors import branch_vector
from repro.trees.node import TreeNode

__all__ = [
    "branch_feature_matrix",
    "pairwise_branch_distances",
    "branch_distance_matrix",
]

BranchKey = Hashable


def _sort_key(branch: BranchKey) -> str:
    # the paper sorts Γ "lexicographically on the string u·u1·u2"
    return str(branch)


def branch_feature_matrix(
    trees: Sequence[TreeNode], q: int = 2
) -> Tuple[np.ndarray, List[BranchKey]]:
    """Stack the trees' branch vectors into a dense count matrix.

    Returns ``(matrix, vocabulary)`` where ``matrix[i, j]`` is the number of
    occurrences of ``vocabulary[j]`` in ``trees[i]``.

    >>> from repro.trees import parse_bracket
    >>> matrix, vocabulary = branch_feature_matrix(
    ...     [parse_bracket("a(b)"), parse_bracket("a(c)")]
    ... )
    >>> matrix.shape
    (2, 4)
    >>> matrix.sum(axis=1).tolist()   # every node roots one branch
    [2, 2]
    """
    vectors = [branch_vector(tree, q) for tree in trees]
    vocabulary = sorted(
        {branch for vector in vectors for branch in vector.counts},
        key=_sort_key,
    )
    index = {branch: j for j, branch in enumerate(vocabulary)}
    matrix = np.zeros((len(trees), len(vocabulary)), dtype=np.int64)
    for i, vector in enumerate(vectors):
        for branch, count in vector.counts.items():
            matrix[i, index[branch]] = count
    return matrix, vocabulary


def pairwise_branch_distances(matrix: np.ndarray) -> np.ndarray:
    """All-pairs L1 (``BDist``) distances from a feature matrix.

    Vectorized per row: ``O(n² · |Γ|)`` with numpy constants — useful for
    clustering experiments on moderate collections.
    """
    n = matrix.shape[0]
    out = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        differences = np.abs(matrix[i + 1 :] - matrix[i]).sum(axis=1)
        out[i, i + 1 :] = differences
        out[i + 1 :, i] = differences
    return out


def branch_distance_matrix(
    trees: Sequence[TreeNode], q: int = 2
) -> np.ndarray:
    """All-pairs ``BDist`` for a tree collection (dense route)."""
    matrix, _ = branch_feature_matrix(trees, q)
    return pairwise_branch_distances(matrix)
