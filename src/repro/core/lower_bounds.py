"""Edit-distance lower bounds from the binary branch embedding.

Theorem 3.2:  ``BDist(T1, T2) ≤ 5 · EDist(T1, T2)``.
Theorem 3.3:  ``BDist_q(T1, T2) ≤ [4(q−1)+1] · EDist(T1, T2)``.

Hence ``BDist_q / [4(q−1)+1]`` never exceeds the edit distance and may be
used as the optimistic bound of a filter-and-refine search.  For the unit
cost model the edit distance is an integer, so the ceiling of the quotient
is also a valid (and tighter) bound; for general costs the bound scales by
the minimum effective operation cost (the paper's extension remark in §2.1).
"""

from __future__ import annotations

from typing import Union

from repro.core.positional import PositionalProfile, search_lower_bound
from repro.core.qlevel import qlevel_bound_factor
from repro.core.vectors import BranchVector, branch_distance
from repro.editdist.costs import UNIT_COSTS, CostModel
from repro.trees.node import TreeNode

__all__ = ["branch_lower_bound", "positional_lower_bound"]


def branch_lower_bound(
    t1: Union[TreeNode, BranchVector],
    t2: Union[TreeNode, BranchVector],
    q: int = 2,
    costs: CostModel = UNIT_COSTS,
) -> float:
    """Lower bound on ``EDist`` from branch counts alone: ``⌈BDist/factor⌉``.

    >>> from repro.trees import parse_bracket
    >>> branch_lower_bound(parse_bracket("a(b,c)"), parse_bracket("a(b,d)"))
    1
    """
    if isinstance(t1, BranchVector):
        q = t1.q
    elif isinstance(t2, BranchVector):
        q = t2.q
    factor = qlevel_bound_factor(q)
    distance = branch_distance(t1, t2, q)
    if costs.is_unit:
        return -(-distance // factor)  # ceil division; distance is an int
    return (distance / factor) * costs.min_operation_cost


def positional_lower_bound(
    t1: Union[TreeNode, PositionalProfile],
    t2: Union[TreeNode, PositionalProfile],
    q: int = 2,
    costs: CostModel = UNIT_COSTS,
    exact: bool = False,
) -> float:
    """The tighter positional bound ``pr_opt`` (§4.2), cost-scaled.

    Always ≥ :func:`branch_lower_bound` and ≥ the tree-size difference.
    """
    bound = search_lower_bound(t1, t2, q=q, exact=exact)
    if costs.is_unit:
        return bound
    return bound * costs.min_operation_cost
