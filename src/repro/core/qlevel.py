"""q-level binary branches (paper §3.4, Definition 5).

The two-level binary branch generalizes to a sliding window that is a
*perfect binary tree of height q − 1* rooted at each original node of the
normalized ``B(T)``; missing positions are padded with ε.  A q-level branch
is identified by the tuple of its ``2^q − 1`` labels in preorder of the
window.

Higher ``q`` encodes more structure (the distance grows with q) at the price
of a looser edit-distance relation: Theorem 3.3 gives
``BDist_q <= [4(q−1)+1] · EDist``, so the usable lower bound is
``BDist_q / [4(q−1)+1]``.  For ``q = 2`` the tuple ``(u, left, right)``
coincides with :class:`~repro.core.branches.BinaryBranch`.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.trees.binary import EPSILON
from repro.trees.node import Label, TreeNode

__all__ = [
    "QLevelBranch",
    "PositionalQLevelBranch",
    "iter_qlevel_branches",
    "iter_positional_qlevel_branches",
    "qlevel_bound_factor",
]


class QLevelBranch(NamedTuple):
    """A q-level binary branch: window labels in preorder (``2^q − 1`` of them)."""

    labels: Tuple[Label, ...]

    @property
    def q(self) -> int:
        """The level of the branch (window has ``2^q − 1`` slots)."""
        return (len(self.labels) + 1).bit_length() - 1

    def __str__(self) -> str:
        return "[" + ",".join(str(label) for label in self.labels) + "]"


class PositionalQLevelBranch(NamedTuple):
    """A q-level branch plus its root node's (preorder, postorder) in ``T``."""

    branch: QLevelBranch
    pre: int
    post: int


def qlevel_bound_factor(q: int) -> int:
    """The Theorem 3.3 constant ``4(q−1)+1`` (= 5 for the base case q=2)."""
    if q < 2:
        raise InvalidParameterError("q must be >= 2 (q=1 encodes no structure at all)")
    return 4 * (q - 1) + 1


class _LcrsView:
    """Left-child/right-sibling view of ``T`` as the (virtual) ``B(T)``.

    ``left(u)``/``right(u)`` return ``None`` for ε without materializing the
    binary tree, so window extraction stays allocation-free per node.
    """

    __slots__ = ()

    @staticmethod
    def left(node: Optional[TreeNode]) -> Optional[TreeNode]:
        return None if node is None else node.first_child

    @staticmethod
    def right(node: Optional[TreeNode]) -> Optional[TreeNode]:
        return None if node is None else node.next_sibling


def _window_labels(root: Optional[TreeNode], q: int) -> Tuple[Label, ...]:
    """Labels of the height-(q−1) perfect window rooted at ``root``, preorder.

    ``None`` (ε) positions propagate: the children of an ε slot are ε.
    """
    out: List[Label] = []
    # preorder of a perfect binary tree via explicit (node, depth) stack
    stack: List[Tuple[Optional[TreeNode], int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        out.append(EPSILON if node is None else node.label)
        if depth + 1 < q:
            stack.append((_LcrsView.right(node), depth + 1))
            stack.append((_LcrsView.left(node), depth + 1))
    return tuple(out)


def iter_qlevel_branches(tree: TreeNode, q: int = 2) -> Iterator[QLevelBranch]:
    """Yield the q-level branch rooted at every original node, in preorder.

    >>> from repro.trees import parse_bracket
    >>> branches = list(iter_qlevel_branches(parse_bracket("a(b)"), q=2))
    >>> str(branches[0])
    '[a,b,ε]'
    """
    factor = qlevel_bound_factor(q)  # validates q
    del factor
    for node in tree.iter_preorder():
        yield QLevelBranch(_window_labels(node, q))


def iter_positional_qlevel_branches(
    tree: TreeNode, q: int = 2
) -> Iterator[PositionalQLevelBranch]:
    """Yield q-level branches with (preorder, postorder) root positions."""
    qlevel_bound_factor(q)  # validates q
    pre_counter = 0
    post_counter = 0
    stack: List[Tuple[TreeNode, bool, int]] = [(tree, False, 0)]
    while stack:
        node, expanded, pre = stack.pop()
        if expanded:
            post_counter += 1
            yield PositionalQLevelBranch(
                QLevelBranch(_window_labels(node, q)), pre, post_counter
            )
            continue
        pre_counter += 1
        stack.append((node, True, pre_counter))
        for child in reversed(node.children):
            stack.append((child, False, 0))
