"""The paper's primary contribution: the binary branch embedding.

Branch extraction (2-level and q-level), sparse branch vectors with the L1
``BDist``, edit-distance lower bounds, the positional refinement, and the
inverted file index of Algorithm 1.
"""

from repro.core.branches import (
    BinaryBranch,
    PositionalBranch,
    branches_via_binary_tree,
    iter_branches,
    iter_positional_branches,
)
from repro.core.index_io import (
    load_features,
    load_index,
    save_features,
    save_index,
)
from repro.core.inverted_file import InvertedFileIndex, Posting
from repro.core.lower_bounds import branch_lower_bound, positional_lower_bound
from repro.core.positional import (
    PositionalProfile,
    exact_position_matching,
    greedy_interval_matching,
    positional_branch_distance,
    positional_profile,
    search_lower_bound,
)
from repro.core.qlevel import (
    PositionalQLevelBranch,
    QLevelBranch,
    iter_positional_qlevel_branches,
    iter_qlevel_branches,
    qlevel_bound_factor,
)
from repro.core.vectors import BranchVector, branch_distance, branch_vector

__all__ = [
    "BinaryBranch",
    "PositionalBranch",
    "iter_branches",
    "iter_positional_branches",
    "branches_via_binary_tree",
    "QLevelBranch",
    "PositionalQLevelBranch",
    "iter_qlevel_branches",
    "iter_positional_qlevel_branches",
    "qlevel_bound_factor",
    "BranchVector",
    "branch_vector",
    "branch_distance",
    "branch_lower_bound",
    "positional_lower_bound",
    "PositionalProfile",
    "positional_profile",
    "positional_branch_distance",
    "search_lower_bound",
    "greedy_interval_matching",
    "exact_position_matching",
    "InvertedFileIndex",
    "Posting",
    "save_index",
    "load_index",
    "save_features",
    "load_features",
]
