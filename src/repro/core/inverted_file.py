"""The extended inverted file index IFI and vector construction (Alg. 1).

The paper builds all vector representations through an inverted file whose
vocabulary is the dataset's branch alphabet Γ; the inverted list of each
branch stores, per tree, the number of occurrences together with the
preorder and postorder positions at which the branch appears.  Scanning the
IFI afterwards yields every tree's sparse branch vector and its positional
sequences — this is exactly what :meth:`InvertedFileIndex.profile` returns.

Construction is a single traversal per tree (``O(Σ|Ti|)`` time and space);
each update appends at the tail of an inverted list, so updates are O(1).
The class also answers the classic inverted-file query — *which trees
contain this branch?* — used by the join algorithm for candidate generation.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

from repro.core.branches import iter_positional_branches
from repro.core.positional import PositionalProfile
from repro.core.qlevel import iter_positional_qlevel_branches, qlevel_bound_factor
from repro.core.vectors import BranchVector
from repro.exceptions import InvalidParameterError
from repro.trees.node import TreeNode

__all__ = ["Posting", "InvertedFileIndex"]

BranchKey = Hashable


class Posting:
    """One inverted-list entry: a tree's occurrences of one branch."""

    __slots__ = ("tree_id", "pre_positions", "post_positions", "pairs")

    def __init__(self, tree_id: int) -> None:
        self.tree_id = tree_id
        self.pre_positions: List[int] = []
        self.post_positions: List[int] = []
        self.pairs: List[Tuple[int, int]] = []

    @property
    def occurrences(self) -> int:
        """How many times the branch occurs in the tree."""
        return len(self.pre_positions)

    def __repr__(self) -> str:
        return f"Posting(tree_id={self.tree_id}, occurrences={self.occurrences})"


class InvertedFileIndex:
    """Inverted file over the binary branches of a tree collection.

    Parameters
    ----------
    q:
        Branch level; 2 is the paper's default two-level binary branch.

    Examples
    --------
    >>> from repro.trees import parse_bracket
    >>> ifi = InvertedFileIndex()
    >>> ifi.add_tree(0, parse_bracket("a(b,c)"))
    >>> ifi.tree_count
    1
    """

    def __init__(self, q: int = 2) -> None:
        qlevel_bound_factor(q)  # validates q >= 2
        self.q = q
        # vocabulary: branch -> inverted list of postings (append-only)
        self._lists: Dict[BranchKey, List[Posting]] = {}
        self._tree_sizes: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction (Algorithm 1)
    # ------------------------------------------------------------------
    def add_tree(self, tree_id: int, tree: TreeNode) -> None:
        """Traverse ``tree`` and append its branch occurrences to the IFI."""
        if tree_id in self._tree_sizes:
            raise InvalidParameterError(f"tree id {tree_id} already indexed")
        if self.q == 2:
            items = iter_positional_branches(tree)
        else:
            items = iter_positional_qlevel_branches(tree, self.q)
        size = 0
        for positional in items:
            size += 1
            postings = self._lists.setdefault(positional.branch, [])
            # Alg. 1 appends at the end of the inverted list: reuse the tail
            # posting when it belongs to the same tree, else start a new one.
            if postings and postings[-1].tree_id == tree_id:
                posting = postings[-1]
            else:
                posting = Posting(tree_id)
                postings.append(posting)
            posting.pre_positions.append(positional.pre)
            posting.post_positions.append(positional.post)
            posting.pairs.append((positional.pre, positional.post))
        self._tree_sizes[tree_id] = size

    def add_trees(self, trees: Iterable[TreeNode], start_id: int = 0) -> List[int]:
        """Index a sequence of trees; returns the assigned ids."""
        ids = []
        for offset, tree in enumerate(trees):
            tree_id = start_id + offset
            self.add_tree(tree_id, tree)
            ids.append(tree_id)
        return ids

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def vocabulary_size(self) -> int:
        """``|Γ|`` — number of distinct branches across the collection."""
        return len(self._lists)

    @property
    def tree_count(self) -> int:
        """Number of indexed trees."""
        return len(self._tree_sizes)

    def tree_size(self, tree_id: int) -> int:
        """``|T|`` of an indexed tree."""
        return self._tree_sizes[tree_id]

    def postings(self, branch: BranchKey) -> List[Posting]:
        """The inverted list of one branch (empty list if absent)."""
        return list(self._lists.get(branch, ()))

    def trees_containing(self, branch: BranchKey) -> List[int]:
        """Ids of trees containing ``branch`` (candidate generation)."""
        return [posting.tree_id for posting in self._lists.get(branch, ())]

    # ------------------------------------------------------------------
    # Vector / profile extraction (the second phase of Algorithm 1)
    # ------------------------------------------------------------------
    def vectors(self) -> Dict[int, BranchVector]:
        """Scan the IFI once and emit every tree's sparse branch vector."""
        counts: Dict[int, Dict[BranchKey, int]] = {
            tree_id: {} for tree_id in self._tree_sizes
        }
        for branch, postings in self._lists.items():
            for posting in postings:
                counts[posting.tree_id][branch] = posting.occurrences
        return {
            tree_id: BranchVector(branch_counts, self._tree_sizes[tree_id], self.q)
            for tree_id, branch_counts in counts.items()
        }

    def profiles(self) -> Dict[int, PositionalProfile]:
        """Scan the IFI once and emit every tree's positional profile.

        Position lists come out ascending because the construction traversal
        visits nodes in preorder and appends postorder numbers as counters
        increase per tree; both sequences are therefore already sorted except
        the preorder list, which is appended in preorder (ascending) — both
        are sorted defensively anyway (cheap, idempotent).
        """
        pre: Dict[int, Dict[BranchKey, List[int]]] = {
            tree_id: {} for tree_id in self._tree_sizes
        }
        post: Dict[int, Dict[BranchKey, List[int]]] = {
            tree_id: {} for tree_id in self._tree_sizes
        }
        pairs: Dict[int, Dict[BranchKey, List[Tuple[int, int]]]] = {
            tree_id: {} for tree_id in self._tree_sizes
        }
        for branch, postings in self._lists.items():
            for posting in postings:
                tree_id = posting.tree_id
                pre[tree_id][branch] = sorted(posting.pre_positions)
                post[tree_id][branch] = sorted(posting.post_positions)
                pairs[tree_id][branch] = list(posting.pairs)
        return {
            tree_id: PositionalProfile(
                pre[tree_id],
                post[tree_id],
                pairs[tree_id],
                self._tree_sizes[tree_id],
                self.q,
            )
            for tree_id in self._tree_sizes
        }

    def profile(self, tree_id: int) -> PositionalProfile:
        """Positional profile of a single indexed tree."""
        if tree_id not in self._tree_sizes:
            raise KeyError(f"tree id {tree_id} not indexed")
        pre: Dict[BranchKey, List[int]] = {}
        post: Dict[BranchKey, List[int]] = {}
        pairs: Dict[BranchKey, List[Tuple[int, int]]] = {}
        for branch, postings in self._lists.items():
            for posting in postings:
                if posting.tree_id == tree_id:
                    pre[branch] = sorted(posting.pre_positions)
                    post[branch] = sorted(posting.post_positions)
                    pairs[branch] = list(posting.pairs)
        return PositionalProfile(
            pre, post, pairs, self._tree_sizes[tree_id], self.q
        )

    def __repr__(self) -> str:
        return (
            f"InvertedFileIndex(q={self.q}, trees={self.tree_count}, "
            f"vocabulary={self.vocabulary_size})"
        )
