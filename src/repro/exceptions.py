"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TreeParseError",
    "InvalidTreeError",
    "InvalidEditOperationError",
    "QueryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeParseError(ReproError, ValueError):
    """A tree could not be parsed from its textual representation."""


class InvalidTreeError(ReproError, ValueError):
    """A tree violates a structural precondition of an algorithm."""


class InvalidEditOperationError(ReproError, ValueError):
    """An edit operation cannot be applied to the given tree."""


class QueryError(ReproError, ValueError):
    """A similarity query was issued with invalid parameters."""
