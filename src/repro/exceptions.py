"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TreeParseError",
    "InvalidTreeError",
    "InvalidEditOperationError",
    "QueryError",
    "InvalidParameterError",
    "SignatureMismatchError",
    "FilterStateError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeParseError(ReproError, ValueError):
    """A tree could not be parsed from its textual representation."""


class InvalidTreeError(ReproError, ValueError):
    """A tree violates a structural precondition of an algorithm."""


class InvalidEditOperationError(ReproError, ValueError):
    """An edit operation cannot be applied to the given tree."""


class QueryError(ReproError, ValueError):
    """A similarity query was issued with invalid parameters."""


class InvalidParameterError(ReproError, ValueError):
    """A structural parameter (branch level, index id, …) is out of range."""


class SignatureMismatchError(ReproError, ValueError):
    """Two per-tree signatures live in incomparable embedding spaces.

    Raised when comparing branch vectors or positional profiles built with
    different branch levels ``q``, or packed vectors interned against
    different vocabularies.
    """


class FilterStateError(ReproError, RuntimeError):
    """A filter was used outside its fit → add/bounds lifecycle."""
