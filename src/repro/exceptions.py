"""Exception hierarchy for the repro library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TreeParseError",
    "InvalidTreeError",
    "InvalidEditOperationError",
    "QueryError",
    "InvalidParameterError",
    "SignatureMismatchError",
    "FilterStateError",
    "SharedPlaneClosedError",
    "ShardError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeParseError(ReproError, ValueError):
    """A tree could not be parsed from its textual representation."""


class InvalidTreeError(ReproError, ValueError):
    """A tree violates a structural precondition of an algorithm."""


class InvalidEditOperationError(ReproError, ValueError):
    """An edit operation cannot be applied to the given tree."""


class QueryError(ReproError, ValueError):
    """A similarity query was issued with invalid parameters."""


class InvalidParameterError(ReproError, ValueError):
    """A structural parameter (branch level, index id, …) is out of range."""


class SignatureMismatchError(ReproError, ValueError):
    """Two per-tree signatures live in incomparable embedding spaces.

    Raised when comparing branch vectors or positional profiles built with
    different branch levels ``q``, or packed vectors interned against
    different vocabularies.
    """


class FilterStateError(ReproError, RuntimeError):
    """A filter was used outside its fit → add/bounds lifecycle."""


class SharedPlaneClosedError(ReproError, RuntimeError):
    """A buffer-backed vector was used after its shared plane was closed.

    Packed vectors built over a :mod:`multiprocessing.shared_memory`
    segment borrow the segment's buffer; once the owning plane is closed
    (and possibly unlinked) the memory is gone, so any further comparison
    through such a vector raises this instead of reading freed memory.
    """


class ShardError(ReproError, RuntimeError):
    """A shard worker process failed or the scatter protocol broke down."""
