"""repro — similarity evaluation on tree-structured data.

A from-scratch reproduction of Yang, Kalnis & Tung, *Similarity Evaluation
on Tree-structured Data* (SIGMOD 2005): the binary branch embedding of
rooted ordered labeled trees into L1 vector spaces, its lower-bound relation
to the tree edit distance, the positional refinement, and the
filter-and-refine similarity search framework built on them — together with
every substrate the paper depends on (trees, the Zhang–Shasha edit
distance, histogram-filter comparators, synthetic workload generators).

Quickstart
----------
>>> from repro import TreeDatabase, parse_bracket
>>> db = TreeDatabase([parse_bracket("a(b,c)"), parse_bracket("a(b,d)")])
>>> matches, stats = db.range_query(parse_bracket("a(b,c)"), 1)
>>> [index for index, _ in matches]
[0, 1]

The main public names are re-exported here; see the subpackages for the
full API surface:

* :mod:`repro.trees`    — tree substrate (parsing, traversals, binary form);
* :mod:`repro.editdist` — exact edit distance (Zhang–Shasha) and mappings;
* :mod:`repro.core`     — binary branch vectors, distances, lower bounds;
* :mod:`repro.filters`  — BiBranch filter and comparator filters;
* :mod:`repro.search`   — range / k-NN / join query processing;
* :mod:`repro.service`  — concurrent, cached, observable query serving;
* :mod:`repro.datasets` — the paper's synthetic and DBLP-like datasets;
* :mod:`repro.bench`    — the experiment harness behind ``benchmarks/``.
"""

from repro.core.inverted_file import InvertedFileIndex
from repro.core.lower_bounds import branch_lower_bound, positional_lower_bound
from repro.core.positional import positional_branch_distance, search_lower_bound
from repro.core.features import (
    branch_distance_matrix,
    branch_feature_matrix,
    pairwise_branch_distances,
)
from repro.core.vectors import BranchVector, branch_distance, branch_vector
from repro.editdist.costs import UNIT_COSTS, CostModel, weighted_costs
from repro.editdist.mapping import tree_edit_mapping
from repro.editdist.zhang_shasha import tree_edit_distance
from repro.exceptions import (
    InvalidEditOperationError,
    InvalidTreeError,
    QueryError,
    ReproError,
    TreeParseError,
)
from repro.filters.binary_branch import BinaryBranchFilter, BranchCountFilter
from repro.filters.histogram import HistogramFilter
from repro.filters.traversal_string import TraversalStringFilter
from repro.search.database import TreeDatabase
from repro.service.engine import TreeSearchService
from repro.service.metrics import ServiceMetrics
from repro.search.join import similarity_join, similarity_self_join
from repro.search.knn import knn_query
from repro.search.index_scan import indexed_range_query
from repro.search.range_query import range_query
from repro.storage import load_forest, load_xml_directory, save_forest
from repro.trees.node import TreeNode
from repro.trees.parse import parse_bracket, to_bracket
from repro.trees.json_io import json_to_tree, parse_json_string, tree_to_json
from repro.trees.xml_io import parse_xml_file, parse_xml_string

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TreeNode",
    "parse_bracket",
    "to_bracket",
    "parse_xml_string",
    "parse_xml_file",
    "parse_json_string",
    "json_to_tree",
    "tree_to_json",
    "tree_edit_distance",
    "tree_edit_mapping",
    "CostModel",
    "UNIT_COSTS",
    "weighted_costs",
    "BranchVector",
    "branch_vector",
    "branch_distance",
    "branch_lower_bound",
    "positional_lower_bound",
    "positional_branch_distance",
    "search_lower_bound",
    "InvertedFileIndex",
    "BinaryBranchFilter",
    "BranchCountFilter",
    "HistogramFilter",
    "TraversalStringFilter",
    "TreeDatabase",
    "TreeSearchService",
    "ServiceMetrics",
    "range_query",
    "indexed_range_query",
    "knn_query",
    "similarity_self_join",
    "similarity_join",
    "save_forest",
    "load_forest",
    "load_xml_directory",
    "branch_feature_matrix",
    "branch_distance_matrix",
    "pairwise_branch_distances",
    "ReproError",
    "TreeParseError",
    "InvalidTreeError",
    "InvalidEditOperationError",
    "QueryError",
]
