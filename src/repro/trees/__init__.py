"""Rooted, ordered, labeled tree substrate.

Data structures, parsing (bracket notation and XML), traversals, structural
properties, the binary tree representation, edit operations, and random tree
generation.
"""

from repro.trees.binary import (
    EPSILON,
    BinaryTreeNode,
    binary_inorder,
    binary_postorder,
    binary_preorder,
    binary_size,
    binary_to_forest,
    binary_to_tree,
    forest_to_binary,
    normalize_binary,
    tree_to_binary,
)
from repro.trees.edits import (
    Delete,
    EditOperation,
    Insert,
    Relabel,
    apply_operation,
    apply_script,
    prune_subtree,
    random_edit_script,
    random_operation,
)
from repro.trees.json_io import json_to_tree, parse_json_string, tree_to_json
from repro.trees.node import Label, TreeNode
from repro.trees.parse import forest_to_bracket, parse_bracket, parse_forest, to_bracket
from repro.trees.properties import (
    dataset_summary,
    degree_counts,
    depth_counts,
    label_counts,
    leaf_distance_counts,
    leaf_distances,
    node_depths,
    tree_summary,
)
from repro.trees.random_trees import gaussian_int, random_forest, random_tree
from repro.trees.render import render_outline, render_tree
from repro.trees.traversal import (
    levelorder,
    node_positions,
    number_postorder,
    number_preorder,
    postorder,
    postorder_labels,
    preorder,
    preorder_labels,
)
from repro.trees.xml_io import parse_xml_file, parse_xml_string, tree_to_xml, xml_to_tree

__all__ = [
    "TreeNode",
    "Label",
    "EPSILON",
    "BinaryTreeNode",
    "tree_to_binary",
    "forest_to_binary",
    "binary_to_tree",
    "binary_to_forest",
    "normalize_binary",
    "binary_preorder",
    "binary_inorder",
    "binary_postorder",
    "binary_size",
    "parse_bracket",
    "to_bracket",
    "parse_forest",
    "forest_to_bracket",
    "preorder",
    "postorder",
    "levelorder",
    "preorder_labels",
    "postorder_labels",
    "number_preorder",
    "number_postorder",
    "node_positions",
    "label_counts",
    "degree_counts",
    "depth_counts",
    "leaf_distances",
    "leaf_distance_counts",
    "node_depths",
    "tree_summary",
    "dataset_summary",
    "Relabel",
    "Delete",
    "Insert",
    "EditOperation",
    "apply_operation",
    "apply_script",
    "prune_subtree",
    "random_operation",
    "random_edit_script",
    "random_tree",
    "render_tree",
    "render_outline",
    "random_forest",
    "gaussian_int",
    "xml_to_tree",
    "tree_to_xml",
    "parse_xml_string",
    "parse_xml_file",
    "json_to_tree",
    "tree_to_json",
    "parse_json_string",
]
