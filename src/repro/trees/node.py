"""Rooted, ordered, labeled trees.

This module provides :class:`TreeNode`, the fundamental data structure of the
library.  A tree ``T = (N, E, Root(T), label)`` is represented by its root
node; every node stores its label, an ordered list of children and a parent
pointer.  The sibling order is significant (the paper's trees are *ordered*),
and labels are drawn from an arbitrary hashable alphabet (usually strings).

All algorithms in this module are iterative, so arbitrarily deep trees do not
hit Python's recursion limit.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["TreeNode", "Label"]

Label = Hashable


class TreeNode:
    """A node of a rooted, ordered, labeled tree.

    A :class:`TreeNode` owns its children: attaching a node as a child sets
    its ``parent`` pointer, and a node can have at most one parent at a time.

    Parameters
    ----------
    label:
        The node label.  Any hashable value; strings in practice.
    children:
        Optional iterable of :class:`TreeNode` objects appended in order.

    Examples
    --------
    >>> t = TreeNode("a", [TreeNode("b"), TreeNode("c")])
    >>> t.size
    3
    >>> [child.label for child in t.children]
    ['b', 'c']
    """

    __slots__ = ("label", "_children", "parent")

    def __init__(
        self,
        label: Label,
        children: Optional[Iterable["TreeNode"]] = None,
    ) -> None:
        self.label = label
        self.parent: Optional[TreeNode] = None
        self._children: List[TreeNode] = []
        if children is not None:
            for child in children:
                self.add_child(child)

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------
    @property
    def children(self) -> Tuple["TreeNode", ...]:
        """The ordered children of this node (read-only view)."""
        return tuple(self._children)

    def add_child(self, child: "TreeNode") -> "TreeNode":
        """Append ``child`` as the rightmost child and return it."""
        self._attach(child)
        self._children.append(child)
        return child

    def insert_child(self, index: int, child: "TreeNode") -> "TreeNode":
        """Insert ``child`` so that it becomes the ``index``-th child."""
        self._attach(child)
        self._children.insert(index, child)
        return child

    def remove_child(self, child: "TreeNode") -> "TreeNode":
        """Detach ``child`` (and its subtree) from this node.

        Matches by identity, not structural equality — equal-looking
        siblings are distinct nodes.
        """
        for index, existing in enumerate(self._children):
            if existing is child:
                del self._children[index]
                child.parent = None
                return child
        raise ValueError("node is not a child of this node")

    def replace_children(self, children: Sequence["TreeNode"]) -> None:
        """Replace the whole child list (used by the edit-operation engine)."""
        for old in self._children:
            old.parent = None
        self._children = []
        for child in children:
            self.add_child(child)

    def _attach(self, child: "TreeNode") -> None:
        if not isinstance(child, TreeNode):
            raise TypeError(f"children must be TreeNode, got {type(child).__name__}")
        if child.parent is not None:
            raise ValueError(
                "node already has a parent; detach it before re-attaching"
            )
        if child is self:
            raise ValueError("a node cannot be its own child")
        child.parent = self

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        """True if the node has no children."""
        return not self._children

    @property
    def is_root(self) -> bool:
        """True if the node has no parent."""
        return self.parent is None

    @property
    def degree(self) -> int:
        """Number of children (fanout)."""
        return len(self._children)

    @property
    def first_child(self) -> Optional["TreeNode"]:
        """The leftmost child, or ``None`` for a leaf.

        Together with :attr:`next_sibling` this is the left-child /
        right-sibling view that underlies the binary tree representation.
        """
        return self._children[0] if self._children else None

    @property
    def next_sibling(self) -> Optional["TreeNode"]:
        """The sibling immediately to the right, or ``None``."""
        if self.parent is None:
            return None
        siblings = self.parent._children
        index = self.child_index()
        if index + 1 < len(siblings):
            return siblings[index + 1]
        return None

    @property
    def prev_sibling(self) -> Optional["TreeNode"]:
        """The sibling immediately to the left, or ``None``."""
        if self.parent is None:
            return None
        index = self.child_index()
        if index > 0:
            return self.parent._children[index - 1]
        return None

    def child_index(self) -> int:
        """Position of this node within its parent's child list."""
        if self.parent is None:
            raise ValueError("root node has no child index")
        siblings = self.parent._children
        for i, sibling in enumerate(siblings):
            if sibling is self:
                return i
        raise RuntimeError("inconsistent parent pointer")  # pragma: no cover

    @property
    def root(self) -> "TreeNode":
        """The root of the tree containing this node."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def ancestors(self) -> Iterator["TreeNode"]:
        """Yield proper ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # ------------------------------------------------------------------
    # Aggregate properties (iterative; safe for deep trees)
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of nodes in the subtree rooted at this node (``|T|``)."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node._children)
        return count

    @property
    def height(self) -> int:
        """Edges on the longest downward path from this node (leaf = 0)."""
        best = 0
        stack: List[Tuple[TreeNode, int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            for child in node._children:
                stack.append((child, depth + 1))
        return best

    @property
    def depth(self) -> int:
        """Edges from the root of the tree down to this node (root = 0)."""
        return sum(1 for _ in self.ancestors())

    # ------------------------------------------------------------------
    # Iteration (duplicated from repro.trees.traversal for convenience;
    # the traversal module offers the full set of orders)
    # ------------------------------------------------------------------
    def iter_preorder(self) -> Iterator["TreeNode"]:
        """Yield the subtree's nodes in preorder (node before children)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def iter_postorder(self) -> Iterator["TreeNode"]:
        """Yield the subtree's nodes in postorder (children before node)."""
        stack: List[Tuple[TreeNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node._children):
                    stack.append((child, False))

    def leaves(self) -> Iterator["TreeNode"]:
        """Yield the leaves of the subtree in left-to-right order."""
        for node in self.iter_preorder():
            if node.is_leaf:
                yield node

    # ------------------------------------------------------------------
    # Copying / equality
    # ------------------------------------------------------------------
    def clone(self) -> "TreeNode":
        """Deep-copy the subtree rooted at this node (parent is dropped)."""
        copy_root = TreeNode(self.label)
        stack = [(self, copy_root)]
        while stack:
            original, copy = stack.pop()
            for child in original._children:
                child_copy = TreeNode(child.label)
                copy._children.append(child_copy)
                child_copy.parent = copy
                stack.append((child, child_copy))
        return copy_root

    def equals(self, other: Any) -> bool:
        """Structural equality: same shape and labels (parents ignored)."""
        if not isinstance(other, TreeNode):
            return False
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a.label != b.label or len(a._children) != len(b._children):
                return False
            stack.extend(zip(a._children, b._children))
        return True

    def __eq__(self, other: Any) -> bool:
        return self.equals(other)

    def __ne__(self, other: Any) -> bool:
        return not self.equals(other)

    def __hash__(self) -> int:
        # Structural hash computed bottom-up, iteratively.  Consistent with
        # equals(): equal trees hash equal.
        result: dict[int, int] = {}
        for node in self.iter_postorder():
            child_hashes = tuple(result.pop(id(child)) for child in node._children)
            result[id(node)] = hash((node.label, child_hashes))
        return result[id(self)]

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"TreeNode({self.label!r})"
        return f"TreeNode({self.label!r}, {self.degree} children, size={self.size})"
