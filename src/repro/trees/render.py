"""Plain-text rendering of trees.

Debugging and CLI output: draw a tree as an indented box diagram, or
side-by-side with edit-mapping annotations.  Pure presentation — no
algorithmic content.
"""

from __future__ import annotations

from typing import List

from repro.trees.node import TreeNode

__all__ = ["render_tree", "render_outline"]


def render_tree(tree: TreeNode, max_label: int = 40) -> str:
    """Draw a tree with box-drawing connectors.

    >>> from repro.trees import parse_bracket
    >>> print(render_tree(parse_bracket("a(b(c,d),e)")))
    a
    ├── b
    │   ├── c
    │   └── d
    └── e
    """
    lines: List[str] = []

    def label_of(node: TreeNode) -> str:
        text = str(node.label)
        if len(text) > max_label:
            text = text[: max_label - 1] + "…"
        return text

    lines.append(label_of(tree))
    # iterative DFS carrying the prefix for each child
    stack = [
        (child, "", index == tree.degree - 1)
        for index, child in reversed(list(enumerate(tree.children)))
    ]
    while stack:
        node, prefix, is_last = stack.pop()
        connector = "└── " if is_last else "├── "
        lines.append(prefix + connector + label_of(node))
        child_prefix = prefix + ("    " if is_last else "│   ")
        for index, child in reversed(list(enumerate(node.children))):
            stack.append((child, child_prefix, index == node.degree - 1))
    return "\n".join(lines)


def render_outline(tree: TreeNode, indent: str = "  ") -> str:
    """Draw a tree as a plain indented outline (one label per line).

    >>> from repro.trees import parse_bracket
    >>> print(render_outline(parse_bracket("a(b,c)")))
    a
      b
      c
    """
    lines: List[str] = []
    stack = [(tree, 0)]
    while stack:
        node, depth = stack.pop()
        lines.append(indent * depth + str(node.label))
        for child in reversed(node.children):
            stack.append((child, depth + 1))
    return "\n".join(lines)
