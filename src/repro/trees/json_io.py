"""Converting JSON documents to and from labeled trees.

JSON is today's ubiquitous tree-structured format; the mapping mirrors the
XML one (:mod:`repro.trees.xml_io`) so the paper's similarity machinery
applies to JSON documents unchanged:

* an object becomes a node labeled ``{}`` whose children are its keys
  (nodes labeled with the key, each holding the value subtree) in
  **document order** — order matters for the ordered edit distance and
  keeps structural diffs intuitive;
* an array becomes a node labeled ``[]`` with one child per element;
* a scalar becomes a leaf labeled with a typed rendering (``str:x``,
  ``num:3``, ``bool:true``, ``null``) so ``"1"`` and ``1`` stay distinct.

The encoding is invertible (:func:`tree_to_json`); the round-trip is
property-tested.  :func:`json_to_tree` recurses over the *document*, whose
depth is bounded by what :func:`json.loads` will parse; ``tree_to_json``
is iterative (explicit stack), because its input is an arbitrary
:class:`TreeNode` — a tree converted from XML or generated for the
corpus can be deeper than any recursion limit.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple, Union

from repro.exceptions import TreeParseError
from repro.trees.node import TreeNode

__all__ = ["json_to_tree", "tree_to_json", "parse_json_string"]

OBJECT_LABEL = "{}"
ARRAY_LABEL = "[]"
NULL_LABEL = "null"


def _scalar_label(value: Any) -> str:
    if value is None:
        return NULL_LABEL
    if isinstance(value, bool):
        return f"bool:{str(value).lower()}"
    if isinstance(value, (int, float)):
        return f"num:{json.dumps(value)}"
    return f"str:{value}"


def json_to_tree(value: Any) -> TreeNode:
    """Encode a parsed JSON value as an ordered labeled tree.

    >>> tree = json_to_tree({"a": 1, "b": [True, None]})
    >>> tree.label
    '{}'
    >>> [c.label for c in tree.children]
    ['a', 'b']
    >>> tree.size
    7
    """
    if isinstance(value, dict):
        node = TreeNode(OBJECT_LABEL)
        for key, item in value.items():
            key_node = node.add_child(TreeNode(str(key)))
            key_node.add_child(json_to_tree(item))
        return node
    if isinstance(value, (list, tuple)):
        return TreeNode(ARRAY_LABEL, [json_to_tree(item) for item in value])
    if value is None or isinstance(value, (str, int, float, bool)):
        return TreeNode(_scalar_label(value))
    raise TreeParseError(
        f"unsupported JSON value of type {type(value).__name__}"
    )


def _scalar_value(tree: TreeNode) -> Any:
    label = tree.label
    if not tree.is_leaf:
        raise TreeParseError(f"scalar node {label!r} cannot have children")
    if not isinstance(label, str):
        raise TreeParseError(f"non-JSON label {label!r}")
    if label == NULL_LABEL:
        return None
    if label.startswith("bool:"):
        return label == "bool:true"
    if label.startswith("num:"):
        return json.loads(label[4:])
    if label.startswith("str:"):
        return label[4:]
    raise TreeParseError(f"label {label!r} does not encode a JSON value")


def tree_to_json(tree: TreeNode) -> Any:
    """Invert :func:`json_to_tree`.

    Iterative on an explicit stack: the input tree can come from any
    source (XML conversion, corpus generators), so its depth is not
    bounded by ``json.loads`` the way :func:`json_to_tree`'s input is.
    Containers are allocated top-down with placeholder slots that child
    stack entries fill in; children are pushed in reverse so they are
    *processed* in document order (which is what dict insertion order —
    and therefore duplicate-key last-wins — depends on).

    >>> tree_to_json(json_to_tree({"a": [1, "x"]}))
    {'a': [1, 'x']}
    """
    holder: List[Any] = [None]
    stack: List[Tuple[TreeNode, Union[Dict[str, Any], List[Any]], Any]] = [
        (tree, holder, 0)
    ]
    while stack:
        node, container, slot = stack.pop()
        label = node.label
        if label == OBJECT_LABEL:
            result: Dict[str, Any] = {}
            for key_node in node.children:
                if key_node.degree != 1:
                    raise TreeParseError(
                        f"object key {key_node.label!r} must hold exactly "
                        "one value"
                    )
                result[str(key_node.label)] = None
            container[slot] = result
            for key_node in reversed(node.children):
                stack.append(
                    (key_node.children[0], result, str(key_node.label))
                )
        elif label == ARRAY_LABEL:
            values: List[Any] = [None] * node.degree
            container[slot] = values
            for index in range(node.degree - 1, -1, -1):
                stack.append((node.children[index], values, index))
        else:
            container[slot] = _scalar_value(node)
    return holder[0]


def parse_json_string(text: str) -> TreeNode:
    """Parse a JSON document string into a tree.

    >>> parse_json_string('[1, 2]').label
    '[]'
    """
    try:
        value = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TreeParseError(f"invalid JSON: {exc}") from exc
    return json_to_tree(value)
