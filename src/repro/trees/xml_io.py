"""Converting XML documents to and from labeled trees.

The paper's flagship application is similarity search over XML repositories
(DBLP records, RNA secondary structure markup, …).  This module maps XML
documents onto the library's rooted ordered labeled trees:

* each element becomes a node labeled with its tag;
* each attribute becomes a child node labeled ``@name=value`` (attributes are
  sorted by name so the mapping is deterministic);
* non-whitespace text content becomes a child node labeled with the text
  (optionally truncated), placed before the element children that follow it.

Only the Python standard library (:mod:`xml.etree.ElementTree`) is used.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, List, Optional

from repro.exceptions import TreeParseError
from repro.trees.node import TreeNode

__all__ = ["xml_to_tree", "tree_to_xml", "parse_xml_file", "parse_xml_string"]


def _text_label(text: Optional[str], max_text: Optional[int]) -> Optional[str]:
    if text is None:
        return None
    stripped = text.strip()
    if not stripped:
        return None
    if max_text is not None and len(stripped) > max_text:
        stripped = stripped[:max_text]
    return stripped


def xml_to_tree(
    element: ET.Element,
    include_attributes: bool = True,
    include_text: bool = True,
    max_text: Optional[int] = None,
) -> TreeNode:
    """Convert an ElementTree element into a :class:`TreeNode`.

    Parameters
    ----------
    element:
        The XML element to convert (typically the document root).
    include_attributes:
        When true, each attribute becomes an ``@name=value`` child node.
    include_text:
        When true, text content becomes label-bearing child nodes.
    max_text:
        Truncate text labels to this many characters (``None`` = no limit).
    """
    root = TreeNode(element.tag)
    stack = [(element, root)]
    while stack:
        src, dst = stack.pop()
        children: List[TreeNode] = []
        if include_attributes:
            for name in sorted(src.attrib):
                children.append(TreeNode(f"@{name}={src.attrib[name]}"))
        if include_text:
            text = _text_label(src.text, max_text)
            if text is not None:
                children.append(TreeNode(text))
        pending = []
        for child in src:
            node = TreeNode(child.tag)
            children.append(node)
            pending.append((child, node))
            if include_text:
                tail = _text_label(child.tail, max_text)
                if tail is not None:
                    children.append(TreeNode(tail))
        for node in children:
            dst.add_child(node)
        stack.extend(pending)
    return root


def tree_to_xml(tree: TreeNode) -> ET.Element:
    """Convert a tree back to an XML element.

    ``@name=value`` children become attributes; children whose label is not a
    valid XML tag-ish string become text nodes.  This is a best-effort inverse
    of :func:`xml_to_tree`, sufficient for round-tripping generated datasets.
    """
    def is_tag(label: object) -> bool:
        return (
            isinstance(label, str)
            and label != ""
            and not label.startswith("@")
            and all(ch.isalnum() or ch in "_-." for ch in label)
            and not label[0].isdigit()
        )

    if not is_tag(tree.label):
        raise TreeParseError(f"root label {tree.label!r} is not a valid XML tag")
    element = ET.Element(str(tree.label))
    stack = [(tree, element)]
    while stack:
        src, dst = stack.pop()
        texts: List[str] = []
        pending = []
        for child in src.children:
            label = child.label
            if isinstance(label, str) and label.startswith("@") and "=" in label:
                name, _, value = label[1:].partition("=")
                dst.set(name, value)
            elif is_tag(label) or child.children:
                sub = ET.SubElement(dst, str(label))
                pending.append((child, sub))
            else:
                texts.append(str(label))
        if texts:
            dst.text = " ".join(texts)
        stack.extend(pending)
    return element


def parse_xml_string(text: str, **kwargs: Any) -> TreeNode:
    """Parse an XML document from a string into a tree."""
    try:
        element = ET.fromstring(text)
    except ET.ParseError as exc:
        raise TreeParseError(f"invalid XML: {exc}") from exc
    return xml_to_tree(element, **kwargs)


def parse_xml_file(path: str, **kwargs: Any) -> TreeNode:
    """Parse an XML document from a file into a tree."""
    try:
        element = ET.parse(path).getroot()
    except ET.ParseError as exc:
        raise TreeParseError(f"invalid XML in {path}: {exc}") from exc
    return xml_to_tree(element, **kwargs)
