"""Random tree generation primitives.

The synthetic workload generator of the paper's §5 (see
:mod:`repro.datasets.synthetic`) and the property-based tests both need
controllable random trees; the shared primitives live here.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional, Sequence

from repro.trees.node import Label, TreeNode

__all__ = ["random_tree", "random_forest", "gaussian_int"]


def gaussian_int(
    rng: random.Random, mean: float, stddev: float, minimum: int = 0
) -> int:
    """Sample ``N{mean, stddev}`` rounded to an int and clamped from below.

    This is the paper's ``N{x1, x2}`` notation for fanout and tree size.
    """
    value = int(round(rng.gauss(mean, stddev)))
    return max(minimum, value)


def random_tree(
    rng: random.Random,
    labels: Sequence[Label],
    size_mean: float = 50.0,
    size_stddev: float = 2.0,
    fanout_mean: float = 4.0,
    fanout_stddev: float = 0.5,
    max_size: Optional[int] = None,
) -> TreeNode:
    """Grow one random tree breadth-first, as described in §5.

    The maximum size is sampled from ``N{size_mean, size_stddev}`` (unless
    given); labels are drawn uniformly; each processed node receives
    ``N{fanout_mean, fanout_stddev}`` children until the size budget is
    exhausted.
    """
    if not labels:
        raise ValueError("labels must be non-empty")
    budget = max_size if max_size is not None else gaussian_int(
        rng, size_mean, size_stddev, minimum=1
    )
    root = TreeNode(rng.choice(labels))
    produced = 1
    frontier: List[TreeNode] = [root]
    cursor = 0
    while cursor < len(frontier) and produced < budget:
        node = frontier[cursor]
        cursor += 1
        fanout = gaussian_int(rng, fanout_mean, fanout_stddev, minimum=0)
        for _ in range(fanout):
            if produced >= budget:
                break
            child = node.add_child(TreeNode(rng.choice(labels)))
            frontier.append(child)
            produced += 1
    return root


def random_forest(
    rng: random.Random,
    count: int,
    labels: Sequence[Label],
    **tree_kwargs: Any,
) -> List[TreeNode]:
    """Generate ``count`` independent random trees."""
    return [random_tree(rng, labels, **tree_kwargs) for _ in range(count)]
