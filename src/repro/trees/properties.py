"""Aggregate structural properties of trees.

These are the quantities the histogram filters (Kailing et al., EDBT 2004)
are built from — node heights/leaf distances, degrees, and label counts —
plus general dataset statistics used by the benchmark harness.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

from repro.trees.node import TreeNode

__all__ = [
    "label_counts",
    "degree_counts",
    "depth_counts",
    "leaf_distances",
    "leaf_distance_counts",
    "node_depths",
    "tree_summary",
    "dataset_summary",
]


def label_counts(tree: TreeNode) -> Counter:
    """Multiset of node labels (the *label histogram*)."""
    return Counter(node.label for node in tree.iter_preorder())


def degree_counts(tree: TreeNode) -> Counter:
    """Multiset of node fanouts (the *degree histogram*)."""
    return Counter(node.degree for node in tree.iter_preorder())


def node_depths(tree: TreeNode) -> List[int]:
    """Depth of every node (root = 0), in preorder."""
    depths: Dict[int, int] = {id(tree): 0}
    out: List[int] = []
    for node in tree.iter_preorder():
        depth = depths.pop(id(node))
        out.append(depth)
        for child in node.children:
            depths[id(child)] = depth + 1
    return out


def depth_counts(tree: TreeNode) -> Counter:
    """Multiset of node depths (the *height histogram* of the paper's §5)."""
    return Counter(node_depths(tree))


def leaf_distances(tree: TreeNode) -> List[int]:
    """Distance of every node to its nearest descendant leaf, in postorder.

    This is the quantity Kailing et al. histogram: a leaf has distance 0,
    an inner node ``1 + min(children)``.  A single node insertion or deletion
    changes any node's leaf distance by at most one, which is the property
    the leaf-distance filter's soundness rests on.
    """
    distance: Dict[int, int] = {}
    out: List[int] = []
    for node in tree.iter_postorder():
        if node.is_leaf:
            value = 0
        else:
            value = 1 + min(distance.pop(id(child)) for child in node.children)
        distance[id(node)] = value
        out.append(value)
    return out


def leaf_distance_counts(tree: TreeNode) -> Counter:
    """Multiset of leaf distances (the *leaf-distance histogram*)."""
    return Counter(leaf_distances(tree))


def tree_summary(tree: TreeNode) -> Dict[str, float]:
    """Structural summary of one tree: size, height, leaves, mean fanout."""
    size = 0
    leaves = 0
    internal_degrees = 0
    internal = 0
    for node in tree.iter_preorder():
        size += 1
        if node.is_leaf:
            leaves += 1
        else:
            internal += 1
            internal_degrees += node.degree
    return {
        "size": size,
        "height": tree.height,
        "leaves": leaves,
        "mean_fanout": internal_degrees / internal if internal else 0.0,
        "distinct_labels": len(label_counts(tree)),
    }


def dataset_summary(trees: Iterable[TreeNode]) -> Dict[str, float]:
    """Average structural statistics over a dataset of trees.

    Mirrors the numbers the paper reports for DBLP ("average depth is 2.902,
    and there are 10.15 nodes on average in each tree").
    """
    sizes: List[int] = []
    heights: List[int] = []
    labels: set = set()
    for tree in trees:
        sizes.append(tree.size)
        heights.append(tree.height)
        labels.update(label_counts(tree))
    count = len(sizes)
    if count == 0:
        return {"count": 0, "avg_size": 0.0, "avg_height": 0.0, "labels": 0}
    return {
        "count": count,
        "avg_size": sum(sizes) / count,
        "avg_height": sum(heights) / count,
        "max_size": max(sizes),
        "min_size": min(sizes),
        "labels": len(labels),
    }
