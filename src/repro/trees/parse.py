"""Bracket-notation parsing and serialization for trees.

The library's canonical text format is the *bracket notation* common in the
tree-edit-distance literature::

    a(b(c,d),e)

i.e. a label followed by an optional parenthesized, comma-separated list of
child subtrees.  Labels may be quoted with double quotes to include the
special characters ``( ) , "`` (a backslash escapes a quote or backslash
inside a quoted label).

The format round-trips: ``parse_bracket(to_bracket(t)) == t``.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import TreeParseError
from repro.trees.node import TreeNode

__all__ = ["parse_bracket", "to_bracket", "parse_forest", "forest_to_bracket"]

_SPECIAL = set("(),\"")


def _needs_quoting(label: str) -> bool:
    return label == "" or any(ch in _SPECIAL or ch.isspace() for ch in label)


def _quote(label: str) -> str:
    escaped = label.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def to_bracket(tree: TreeNode) -> str:
    """Serialize a tree to bracket notation.

    >>> to_bracket(TreeNode("a", [TreeNode("b"), TreeNode("c")]))
    'a(b,c)'
    """
    parts: List[str] = []
    # Iterative serialization: emit tokens via an explicit stack of
    # (node, None) for "open" events and (None, text) for literal text.
    stack: List[object] = [tree]
    while stack:
        item = stack.pop()
        if isinstance(item, str):
            parts.append(item)
            continue
        node = item
        label = node.label if isinstance(node.label, str) else str(node.label)
        parts.append(_quote(label) if _needs_quoting(label) else label)
        if node.children:
            parts.append("(")
            stack.append(")")
            children = node.children
            for i in range(len(children) - 1, -1, -1):
                stack.append(children[i])
                if i > 0:
                    stack.append(",")
    return "".join(parts)


def forest_to_bracket(forest: List[TreeNode]) -> str:
    """Serialize a forest as a comma-separated list of bracket trees."""
    return ",".join(to_bracket(tree) for tree in forest)


class _Tokenizer:
    """Splits a bracket string into labels and punctuation tokens."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> TreeParseError:
        return TreeParseError(f"{message} (at position {self.pos})")

    def peek(self) -> str:
        self._skip_ws()
        if self.pos >= len(self.text):
            return ""
        return self.text[self.pos]

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def take_punct(self) -> str:
        ch = self.peek()
        self.pos += 1
        return ch

    def take_label(self) -> str:
        self._skip_ws()
        text, pos = self.text, self.pos
        if pos >= len(text):
            raise self.error("expected a label, found end of input")
        if text[pos] == '"':
            return self._take_quoted()
        start = pos
        while pos < len(text) and text[pos] not in _SPECIAL and not text[pos].isspace():
            pos += 1
        if pos == start:
            raise self.error(f"expected a label, found {text[pos]!r}")
        self.pos = pos
        return text[start:pos]

    def _take_quoted(self) -> str:
        text = self.text
        pos = self.pos + 1  # skip opening quote
        out: List[str] = []
        while pos < len(text):
            ch = text[pos]
            if ch == "\\":
                if pos + 1 >= len(text):
                    raise self.error("dangling escape in quoted label")
                out.append(text[pos + 1])
                pos += 2
            elif ch == '"':
                self.pos = pos + 1
                return "".join(out)
            else:
                out.append(ch)
                pos += 1
        raise self.error("unterminated quoted label")


def _parse_subtree(tokens: _Tokenizer) -> TreeNode:
    label = tokens.take_label()
    node = TreeNode(label)
    if tokens.peek() == "(":
        tokens.take_punct()
        # children parsed iteratively with an explicit stack of open nodes
        _parse_children(tokens, node)
    return node


def _parse_children(tokens: _Tokenizer, parent: TreeNode) -> None:
    stack = [parent]
    while stack:
        current = stack[-1]
        child = TreeNode(tokens.take_label())
        current.add_child(child)
        nxt = tokens.peek()
        if nxt == "(":
            tokens.take_punct()
            stack.append(child)
            continue
        while True:
            nxt = tokens.peek()
            if nxt == ",":
                tokens.take_punct()
                break
            if nxt == ")":
                tokens.take_punct()
                stack.pop()
                if not stack:
                    return
                continue
            raise tokens.error(f"expected ',' or ')', found {nxt!r}")
    raise tokens.error("unbalanced parentheses")  # pragma: no cover


def parse_bracket(text: str) -> TreeNode:
    """Parse a single tree from bracket notation.

    >>> parse_bracket("a(b(c,d),e)").size
    5
    """
    tokens = _Tokenizer(text)
    tree = _parse_subtree(tokens)
    if tokens.peek() != "":
        raise tokens.error("trailing input after tree")
    return tree


def parse_forest(text: str) -> List[TreeNode]:
    """Parse a comma-separated list of bracket trees."""
    tokens = _Tokenizer(text)
    forest = [_parse_subtree(tokens)]
    while tokens.peek() == ",":
        tokens.take_punct()
        forest.append(_parse_subtree(tokens))
    if tokens.peek() != "":
        raise tokens.error("trailing input after forest")
    return forest
