"""Tree traversals and node-numbering utilities.

The positional binary branch distance (paper §4.2) keys on the *preorder*
and *postorder* numbers of nodes, so this module provides both traversals as
iterators plus helpers that assign 1-based position numbers the way the
paper's Figure 2 does.

For the binary tree representation ``B(T)`` (see :mod:`repro.trees.binary`)
the correspondences exploited in the paper hold:

* preorder of ``T``  == preorder of ``B(T)`` restricted to original nodes;
* postorder of ``T`` == inorder  of ``B(T)`` restricted to original nodes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Tuple

from repro.trees.node import TreeNode

__all__ = [
    "preorder",
    "postorder",
    "levelorder",
    "preorder_labels",
    "postorder_labels",
    "number_preorder",
    "number_postorder",
    "node_positions",
]


def preorder(tree: TreeNode) -> Iterator[TreeNode]:
    """Yield nodes in preorder (node, then children left to right)."""
    return tree.iter_preorder()


def postorder(tree: TreeNode) -> Iterator[TreeNode]:
    """Yield nodes in postorder (children left to right, then node)."""
    return tree.iter_postorder()


def levelorder(tree: TreeNode) -> Iterator[TreeNode]:
    """Yield nodes level by level (breadth-first), left to right."""
    queue = deque([tree])
    while queue:
        node = queue.popleft()
        yield node
        queue.extend(node.children)


def preorder_labels(tree: TreeNode) -> List:
    """Labels of the tree in preorder (the Guha et al. filter's sequence)."""
    return [node.label for node in preorder(tree)]


def postorder_labels(tree: TreeNode) -> List:
    """Labels of the tree in postorder."""
    return [node.label for node in postorder(tree)]


def number_preorder(tree: TreeNode) -> Dict[int, int]:
    """Map ``id(node) -> 1-based preorder position`` for every node."""
    return {id(node): i for i, node in enumerate(preorder(tree), start=1)}


def number_postorder(tree: TreeNode) -> Dict[int, int]:
    """Map ``id(node) -> 1-based postorder position`` for every node."""
    return {id(node): i for i, node in enumerate(postorder(tree), start=1)}


def node_positions(tree: TreeNode) -> Dict[int, Tuple[int, int]]:
    """Map ``id(node) -> (preorder, postorder)`` 1-based positions.

    These are the ``(pre(u), post(u))`` annotations shown next to each node
    in the paper's Figure 2.
    """
    pre = number_preorder(tree)
    post = number_postorder(tree)
    return {node_id: (pre[node_id], post[node_id]) for node_id in pre}
