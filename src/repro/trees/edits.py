"""Executable tree edit operations (paper §2.1).

The three unit-cost operations on rooted ordered labeled trees:

* **relabel** — change the label of a node;
* **delete**  — remove a node ``n``, splicing its children into its parent's
  child list at ``n``'s former position;
* **insert**  — the inverse of delete: add a node ``n`` under ``n'``, making a
  consecutive subsequence of ``n'``'s children the children of ``n``.

These are used by the synthetic data generator (§5 applies random edits with
a decay probability) and by the property-based test suite (applying ``k``
random operations must never increase the edit distance beyond ``k``).

Operations are value objects applied to a tree *in place*; ``apply_script``
clones first, so the input is preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from repro.exceptions import InvalidEditOperationError
from repro.trees.node import Label, TreeNode

__all__ = [
    "Relabel",
    "Delete",
    "Insert",
    "EditOperation",
    "apply_operation",
    "apply_script",
    "prune_subtree",
    "random_operation",
    "random_edit_script",
]


@dataclass(frozen=True)
class Relabel:
    """Relabel the node at preorder position ``position`` (1-based)."""

    position: int
    new_label: Label

    def describe(self) -> str:
        return f"relabel node @{self.position} -> {self.new_label!r}"


@dataclass(frozen=True)
class Delete:
    """Delete the node at preorder position ``position`` (1-based, not root)."""

    position: int

    def describe(self) -> str:
        return f"delete node @{self.position}"


@dataclass(frozen=True)
class Insert:
    """Insert a node labeled ``label`` under the node at ``parent_position``.

    The new node adopts the parent's children ``child_index`` through
    ``child_index + child_count - 1`` (a consecutive subsequence, possibly
    empty) and takes their place in the parent's child list.
    """

    parent_position: int
    child_index: int
    child_count: int
    label: Label

    def describe(self) -> str:
        return (
            f"insert {self.label!r} under node @{self.parent_position} "
            f"adopting children [{self.child_index}:"
            f"{self.child_index + self.child_count}]"
        )


EditOperation = Union[Relabel, Delete, Insert]


def _node_at(tree: TreeNode, position: int) -> TreeNode:
    if position < 1:
        raise InvalidEditOperationError(f"positions are 1-based, got {position}")
    for i, node in enumerate(tree.iter_preorder(), start=1):
        if i == position:
            return node
    raise InvalidEditOperationError(
        f"position {position} out of range for tree of size {tree.size}"
    )


def apply_operation(tree: TreeNode, operation: EditOperation) -> TreeNode:
    """Apply one edit operation to ``tree`` in place and return the root.

    Raises :class:`InvalidEditOperationError` when the operation does not fit
    the tree (bad position, deleting the root, out-of-range child slice).
    """
    if isinstance(operation, Relabel):
        node = _node_at(tree, operation.position)
        node.label = operation.new_label
        return tree

    if isinstance(operation, Delete):
        node = _node_at(tree, operation.position)
        parent = node.parent
        if parent is None:
            raise InvalidEditOperationError("cannot delete the root node")
        index = node.child_index()
        orphans = list(node.children)
        for orphan in orphans:
            node.remove_child(orphan)
        parent.remove_child(node)
        for offset, orphan in enumerate(orphans):
            parent.insert_child(index + offset, orphan)
        return tree

    if isinstance(operation, Insert):
        parent = _node_at(tree, operation.parent_position)
        start, count = operation.child_index, operation.child_count
        if count < 0 or start < 0 or start + count > parent.degree:
            raise InvalidEditOperationError(
                f"child slice [{start}:{start + count}] out of range for node "
                f"with {parent.degree} children"
            )
        adopted = list(parent.children[start : start + count])
        for child in adopted:
            parent.remove_child(child)
        new_node = TreeNode(operation.label, adopted)
        parent.insert_child(start, new_node)
        return tree

    raise InvalidEditOperationError(f"unknown operation {operation!r}")


def apply_script(
    tree: TreeNode, operations: Sequence[EditOperation]
) -> TreeNode:
    """Apply a sequence of operations to a *clone* of ``tree``."""
    result = tree.clone()
    for operation in operations:
        apply_operation(result, operation)
    return result


def prune_subtree(tree: TreeNode, position: int) -> TreeNode:
    """Remove the whole subtree rooted at preorder ``position`` (clone-based).

    Unlike :class:`Delete` — which removes a single node and splices its
    children up — this drops the node *and all its descendants* at once,
    which corresponds to ``size(subtree)`` delete operations.  It is the
    reduction step of the counterexample shrinker
    (:mod:`repro.verify.shrink`): pruning can only remove structure, so a
    property that fails on the pruned tree fails on a strictly smaller
    witness.  The input is not modified; the root cannot be pruned.
    """
    if position < 2:
        raise InvalidEditOperationError(
            f"cannot prune position {position}: the root is not removable"
        )
    result = tree.clone()
    node = _node_at(result, position)
    parent = node.parent
    assert parent is not None  # position >= 2 ensures a non-root node
    parent.remove_child(node)
    return result


def random_operation(
    tree: TreeNode,
    labels: Sequence[Label],
    rng: random.Random,
) -> EditOperation:
    """Draw one random applicable operation (equiprobable kinds, as in §5).

    Deletion requires a non-root node, so on a single-node tree the choice
    falls back to relabel/insert.
    """
    size = tree.size
    kinds = ["relabel", "insert"] if size == 1 else ["relabel", "delete", "insert"]
    kind = rng.choice(kinds)
    if kind == "relabel":
        position = rng.randint(1, size)
        return Relabel(position, rng.choice(labels))
    if kind == "delete":
        position = rng.randint(2, size)
        return Delete(position)
    parent_position = rng.randint(1, size)
    parent = _node_at(tree, parent_position)
    degree = parent.degree
    start = rng.randint(0, degree)
    count = rng.randint(0, degree - start)
    return Insert(parent_position, start, count, rng.choice(labels))


def random_edit_script(
    tree: TreeNode,
    count: int,
    labels: Sequence[Label],
    rng: random.Random,
) -> Tuple[TreeNode, List[EditOperation]]:
    """Apply ``count`` random operations; return the new tree and the script.

    The script is generated step by step against the evolving tree so every
    operation is applicable at its turn.
    """
    current = tree.clone()
    script: List[EditOperation] = []
    for _ in range(count):
        operation = random_operation(current, labels, rng)
        apply_operation(current, operation)
        script.append(operation)
    return current, script
