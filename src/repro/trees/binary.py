"""Binary tree representation of trees and forests (paper §2.3, §3.2).

A rooted ordered forest corresponds one-to-one with a binary tree through the
classic *left-child / right-sibling* encoding:

* the left child of a node ``u`` in ``B(T)`` is ``u``'s first child in ``T``;
* the right child of ``u`` in ``B(T)`` is ``u``'s next sibling in ``T``.

The paper additionally *normalizes* ``B(T)`` by appending ``ε`` leaves so
every original node has exactly two children (Figure 2); the one-level branch
structures of that normalized tree are the *binary branches* at the heart of
the embedding.

This module implements the transform, its inverse, the normalization, and
binary-tree traversals.  ``ε`` is represented by the module constant
:data:`EPSILON`, a dedicated sentinel object that cannot collide with any
user label.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.exceptions import InvalidTreeError
from repro.trees.node import TreeNode

__all__ = [
    "EPSILON",
    "BinaryTreeNode",
    "tree_to_binary",
    "forest_to_binary",
    "binary_to_tree",
    "binary_to_forest",
    "normalize_binary",
    "binary_preorder",
    "binary_inorder",
    "binary_postorder",
    "binary_size",
]


class _Epsilon:
    """Singleton sentinel for the ε padding label (paper's ε nodes)."""

    _instance: Optional["_Epsilon"] = None

    def __new__(cls) -> "_Epsilon":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ε"

    def __reduce__(self) -> Tuple[type, Tuple[()]]:
        return (_Epsilon, ())


EPSILON = _Epsilon()


class BinaryTreeNode:
    """A node of a binary tree ``B(T) = (N, El, Er, Root, label)``.

    Unlike :class:`~repro.trees.node.TreeNode`, the two child slots are
    distinguished: ``left`` edges belong to ``El`` and ``right`` edges to
    ``Er``.  Either slot may be ``None`` (or an ε node after normalization).
    """

    __slots__ = ("label", "left", "right")

    def __init__(
        self,
        label: object,
        left: Optional["BinaryTreeNode"] = None,
        right: Optional["BinaryTreeNode"] = None,
    ) -> None:
        self.label = label
        self.left = left
        self.right = right

    @property
    def is_epsilon(self) -> bool:
        """True if this is an appended ε padding node."""
        return self.label is EPSILON

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryTreeNode):
            return NotImplemented
        stack: List[Tuple[Optional[BinaryTreeNode], Optional[BinaryTreeNode]]]
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a is None or b is None:
                if a is not b:
                    return False
                continue
            if a.label != b.label and not (a.is_epsilon and b.is_epsilon):
                return False
            stack.append((a.left, b.left))
            stack.append((a.right, b.right))
        return True

    def __hash__(self) -> int:
        return hash(tuple(node.label for node in binary_preorder(self)))

    def __repr__(self) -> str:
        return f"BinaryTreeNode({self.label!r})"


def forest_to_binary(forest: List[TreeNode]) -> Optional[BinaryTreeNode]:
    """Transform an ordered forest into its binary tree (LCRS encoding).

    The roots of the forest become a right-spine in the binary tree.  Returns
    ``None`` for an empty forest.
    """
    if not forest:
        return None
    # Build iteratively: for each original node create a binary node; link
    # left = first child, right = next sibling.
    def convert(root: TreeNode) -> BinaryTreeNode:
        mapping = {id(root): BinaryTreeNode(root.label)}
        for node in root.iter_preorder():
            bnode = mapping[id(node)]
            previous: Optional[BinaryTreeNode] = None
            for child in node.children:
                bchild = BinaryTreeNode(child.label)
                mapping[id(child)] = bchild
                if previous is None:
                    bnode.left = bchild
                else:
                    previous.right = bchild
                previous = bchild
        return mapping[id(root)]

    binary_roots = [convert(tree) for tree in forest]
    for current, nxt in zip(binary_roots, binary_roots[1:]):
        current.right = nxt
    return binary_roots[0]


def tree_to_binary(tree: TreeNode) -> BinaryTreeNode:
    """Transform a single tree into its binary tree representation."""
    result = forest_to_binary([tree])
    assert result is not None
    return result


def binary_to_forest(binary: Optional[BinaryTreeNode]) -> List[TreeNode]:
    """Invert :func:`forest_to_binary`; ε nodes are ignored."""
    if binary is None or binary.is_epsilon:
        return []
    # Iterative inverse: walk the binary tree; left edge = first child,
    # right edge = next sibling.
    root = TreeNode(binary.label)
    forest = [root]
    # stack of (binary_node, tree_node already created for it)
    stack: List[Tuple[BinaryTreeNode, TreeNode]] = [(binary, root)]
    while stack:
        bnode, tnode = stack.pop()
        left = bnode.left
        if left is not None and not left.is_epsilon:
            child = TreeNode(left.label)
            tnode.add_child(child)
            stack.append((left, child))
        right = bnode.right
        if right is not None and not right.is_epsilon:
            sibling = TreeNode(right.label)
            if tnode.parent is None:
                forest.append(sibling)
            else:
                tnode.parent.add_child(sibling)
            stack.append((right, sibling))
    return forest


def binary_to_tree(binary: BinaryTreeNode) -> TreeNode:
    """Invert :func:`tree_to_binary`; raises if the encoding holds a forest."""
    forest = binary_to_forest(binary)
    if len(forest) != 1:
        raise InvalidTreeError(
            f"binary tree encodes a forest of {len(forest)} trees, not a tree"
        )
    return forest[0]


def normalize_binary(binary: BinaryTreeNode) -> BinaryTreeNode:
    """Append ε leaves so every original node has exactly two children.

    This realizes the paper's *normalized* binary tree representation
    ``B(T) = (N ∪ {ε}, El, Er, Root, label)`` of Figure 2: the result is a
    full binary tree whose internal nodes are exactly the original nodes and
    whose leaves are all labeled ε.  The input is modified **in place** and
    also returned for chaining.
    """
    stack = [binary]
    while stack:
        node = stack.pop()
        if node.is_epsilon:
            continue
        if node.left is None:
            node.left = BinaryTreeNode(EPSILON)
        else:
            stack.append(node.left)
        if node.right is None:
            node.right = BinaryTreeNode(EPSILON)
        else:
            stack.append(node.right)
    return binary


def binary_preorder(binary: Optional[BinaryTreeNode]) -> Iterator[BinaryTreeNode]:
    """Yield binary-tree nodes in preorder (node, left, right)."""
    if binary is None:
        return
    stack = [binary]
    while stack:
        node = stack.pop()
        yield node
        if node.right is not None:
            stack.append(node.right)
        if node.left is not None:
            stack.append(node.left)


def binary_inorder(binary: Optional[BinaryTreeNode]) -> Iterator[BinaryTreeNode]:
    """Yield binary-tree nodes in inorder (left, node, right).

    Restricted to original nodes, the inorder of ``B(T)`` equals the
    postorder of ``T`` — the identity the positional filter relies on.
    """
    stack: List[BinaryTreeNode] = []
    node = binary
    while stack or node is not None:
        while node is not None:
            stack.append(node)
            node = node.left
        node = stack.pop()
        yield node
        node = node.right


def binary_postorder(binary: Optional[BinaryTreeNode]) -> Iterator[BinaryTreeNode]:
    """Yield binary-tree nodes in postorder (left, right, node)."""
    if binary is None:
        return
    stack: List[Tuple[BinaryTreeNode, bool]] = [(binary, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        stack.append((node, True))
        if node.right is not None:
            stack.append((node.right, False))
        if node.left is not None:
            stack.append((node.left, False))


def binary_size(binary: Optional[BinaryTreeNode], count_epsilon: bool = False) -> int:
    """Number of nodes in a binary tree, optionally counting ε padding."""
    return sum(
        1
        for node in binary_preorder(binary)
        if count_epsilon or not node.is_epsilon
    )
