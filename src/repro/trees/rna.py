"""RNA secondary structure as ordered labeled trees.

The paper's introduction names RNA secondary structure as a flagship domain
for tree similarity ("huge repositories of rooted, ordered and labeled
tree-structured data include the secondary structure of RNA").  This module
implements the standard encoding of a secondary structure (given in
*dot-bracket* notation) as a rooted ordered labeled tree:

* a virtual root labeled ``root`` holds the molecule;
* every base pair ``(i, j)`` becomes an internal node labeled with the two
  paired bases (e.g. ``GC``) whose children are the structure elements
  enclosed by the pair, in 5'→3' order;
* every unpaired base becomes a leaf labeled with the base.

Two molecules' structural similarity is then exactly the tree edit distance
of their encodings — the measure used throughout the RNA comparison
literature (Shapiro & Zhang) — and the paper's filters apply unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from repro.exceptions import TreeParseError
from repro.trees.node import TreeNode

__all__ = ["rna_to_tree", "pair_table"]

ROOT_LABEL = "root"


def pair_table(structure: str) -> List[Optional[int]]:
    """Map each position to its pairing partner (``None`` if unpaired).

    >>> pair_table("((..))")
    [5, 4, None, None, 1, 0]
    """
    stack: List[int] = []
    table: List[Optional[int]] = [None] * len(structure)
    for index, symbol in enumerate(structure):
        if symbol == "(":
            stack.append(index)
        elif symbol == ")":
            if not stack:
                raise TreeParseError(
                    f"unmatched ')' at position {index} in {structure!r}"
                )
            partner = stack.pop()
            table[partner] = index
            table[index] = partner
        elif symbol != ".":
            raise TreeParseError(
                f"invalid dot-bracket symbol {symbol!r} at position {index}"
            )
    if stack:
        raise TreeParseError(
            f"unmatched '(' at position {stack[-1]} in {structure!r}"
        )
    return table


def rna_to_tree(sequence: str, structure: str) -> TreeNode:
    """Encode an RNA secondary structure as an ordered labeled tree.

    Parameters
    ----------
    sequence:
        The primary sequence (e.g. ``"GGGAAACCC"``); case-insensitive.
    structure:
        Dot-bracket secondary structure of the same length.

    >>> tree = rna_to_tree("GGGAAACCC", "(((...)))")
    >>> tree.label
    'root'
    >>> tree.children[0].label   # outermost pair G-C
    'GC'
    >>> [leaf.label for leaf in tree.leaves()]
    ['A', 'A', 'A']
    """
    if len(sequence) != len(structure):
        raise TreeParseError(
            f"sequence length {len(sequence)} != structure length "
            f"{len(structure)}"
        )
    sequence = sequence.upper()
    table = pair_table(structure)
    root = TreeNode(ROOT_LABEL)
    # iterative construction: walk positions left to right, keeping the
    # stack of currently-open pair nodes
    stack: List[TreeNode] = [root]
    index = 0
    while index < len(sequence):
        partner = table[index]
        if partner is None:
            stack[-1].add_child(TreeNode(sequence[index]))
            index += 1
        elif partner > index:  # opening a pair
            node = TreeNode(sequence[index] + sequence[partner])
            stack[-1].add_child(node)
            stack.append(node)
            index += 1
        else:  # closing the pair opened at `partner`
            stack.pop()
            index += 1
    return root
