"""`TreeSearchService` — a thread-safe query-serving layer over TreeDatabase.

The library's query functions are single-shot: one caller, one query, one
`SearchStats`.  A serving deployment needs more:

* **concurrency** — many clients issue queries against one shared database;
  queries must not observe a half-applied ``add``;
* **result caching** — real traffic repeats queries, and the refinement step
  (pure-Python Zhang–Shasha) is expensive enough that a bounded LRU of
  answers keyed by the *canonical bracket form* of the query plus the query
  kind and parameters pays for itself immediately;
* **shared preparation** — every in-flight query reuses one bounded
  :class:`~repro.editdist.zhang_shasha.PreparedTreeCache`, so database trees
  are postorder-flattened once, not once per thread;
* **batching** — ``batch_range`` / ``batch_knn`` fan a list of queries out
  over a ``ThreadPoolExecutor``;
* **observability** — every query is folded into a
  :class:`~repro.service.metrics.ServiceMetrics`.

Consistency model: mutations are exclusive — they wait for in-flight
queries to drain, and queries started after the mutation see the new tree.
The result cache is invalidated **selectively** on
:meth:`TreeSearchService.add`: the database's lower-bound filter already
proves, for each cached answer, whether the newly inserted tree could
possibly appear in it (range: the bound between the cached query and the
new tree exceeds the threshold; k-NN: the result is full and the bound
strictly exceeds the current k-th distance).  Provably unaffected entries
are retained, everything else is evicted; entries are additionally stamped
with the database's :attr:`~repro.search.database.TreeDatabase.generation`
counter, so answers cached against a database state the service did not
itself produce (e.g. an out-of-band ``database.add``) are discarded on
lookup.  Answers are therefore always consistent with *some* complete
database state, never a torn one.

Examples
--------
>>> from repro.trees import parse_bracket
>>> from repro.search.database import TreeDatabase
>>> db = TreeDatabase([parse_bracket("a(b,c)"), parse_bracket("a(b,d)"),
...                    parse_bracket("x(y)")])
>>> service = TreeSearchService(db)
>>> matches, _ = service.range(parse_bracket("a(b,c)"), 1)
>>> [index for index, _ in matches]
[0, 1]
>>> matches, _ = service.range(parse_bracket("a(b,c)"), 1)  # cache hit
>>> service.metrics.cache_hits
1
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from repro.editdist.zhang_shasha import EditDistanceCounter, PreparedTreeCache
from repro.exceptions import InvalidParameterError, QueryError
from repro.obs import tracing
from repro.search.database import TreeDatabase
from repro.search.knn import knn_query
from repro.search.range_query import range_query
from repro.search.statistics import SearchStats
from repro.service.metrics import ServiceMetrics
from repro.trees.node import TreeNode
from repro.trees.parse import to_bracket

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.base import CandidateIndex

__all__ = ["QueryRequest", "TreeSearchService"]

#: A query's answer: ``(matches, stats)`` exactly as the library returns it.
QueryAnswer = Tuple[List[Tuple[int, float]], SearchStats]

#: Cache keys: (kind, canonical bracket of the query tree, parameter).
CacheKey = Tuple[str, str, float]


@dataclass(frozen=True)
class QueryRequest:
    """One query of a (possibly mixed-kind) batch or workload.

    ``kind`` is ``"range"`` (uses ``threshold``) or ``"knn"`` (uses ``k``).
    """

    kind: str
    query: TreeNode
    threshold: float = 0.0
    k: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("range", "knn"):
            raise QueryError(f"unknown query kind {self.kind!r}")


class _ReadWriteLock:
    """Many concurrent readers or one exclusive writer (writer-preferring)."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            self._writer = False
            self._condition.notify_all()


@dataclass
class _CacheEntry:
    """One cached answer plus what the invalidation pruner needs.

    ``query`` is the original query tree (so its filter signature can be
    recomputed against the *current* state — a signature frozen at caching
    time could under-count overlap with branches interned later, which
    would overestimate the bound and unsoundly retain the entry);
    ``generation`` is the database generation the answer was computed at.
    """

    answer: QueryAnswer
    query: TreeNode
    generation: int


class _ResultCache:
    """Bounded LRU of query answers; ``maxsize=0`` disables caching."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 0:
            raise ValueError(f"cache size must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, _CacheEntry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey, generation: int) -> Optional[QueryAnswer]:
        """Answer for ``key`` if cached *at the given generation*.

        A generation mismatch means the database mutated without this cache
        being pruned (an out-of-band mutation); the stale entry is dropped.
        """
        if self.maxsize == 0:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.generation != generation:
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return entry.answer

    def put(self, key: CacheKey, entry: _CacheEntry) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def prune(
        self,
        keep: Callable[[CacheKey, _CacheEntry], bool],
        generation: int,
    ) -> Tuple[int, int]:
        """Drop entries not proven valid; returns ``(retained, evicted)``.

        Retained entries are re-stamped with the new ``generation`` (the
        proof extends their validity to the mutated database state).
        """
        with self._lock:
            evicted = 0
            for key in list(self._entries):
                entry = self._entries[key]
                if keep(key, entry):
                    entry.generation = generation
                else:
                    del self._entries[key]
                    evicted += 1
            return len(self._entries), evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class TreeSearchService:
    """A concurrent, cached, observable facade over :class:`TreeDatabase`.

    Parameters
    ----------
    database:
        The wrapped database.  The service assumes exclusive write access:
        mutate it only through :meth:`add`.
    max_workers:
        Thread-pool width for :meth:`batch`, :meth:`batch_range` and
        :meth:`batch_knn`.
    cache_size:
        Bound on the LRU result cache (number of distinct query answers);
        ``0`` disables result caching entirely.
    prepared_cache_size:
        Bound on the shared prepared-tree cache.  Size it to at least the
        database size plus the expected distinct-query working set so
        refinement never re-flattens a database tree.
    metrics:
        Optional externally owned :class:`ServiceMetrics` (e.g. one shared
        by several services); a private instance is created by default.
    candidate_source:
        How the filter stage generates candidates: ``"loop"`` — the pure
        per-candidate reference path; ``"vectorized"`` — corpus-level
        matrix kernels (requires a feature-store-backed database, raises
        otherwise); ``"vptree"`` / ``"ifi"`` — sublinear candidate
        generation through a :mod:`repro.index` metric index
        (VP-tree / extended inverted file; both require a feature store),
        with the vectorized cascade running over the index's candidate
        ball; ``"auto"`` (default) — vectorized when the database has a
        feature store, loop otherwise.  Answers are bit-identical across
        all sources and refined counts never exceed the vectorized path's
        (pinned by the ``search:vectorized-equivalence`` and
        ``search:index-completeness`` oracles).
    """

    def __init__(
        self,
        database: TreeDatabase,
        max_workers: int = 4,
        cache_size: int = 1024,
        prepared_cache_size: int = 8192,
        metrics: Optional[ServiceMetrics] = None,
        candidate_source: str = "auto",
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        from repro.index import CANDIDATE_SOURCES, INDEX_KINDS

        if candidate_source not in CANDIDATE_SOURCES:
            raise ValueError(
                f"candidate_source must be one of {CANDIDATE_SOURCES}, "
                f"got {candidate_source!r}"
            )
        self.database = database
        self.candidate_source = candidate_source
        self._index: Optional["CandidateIndex"] = None
        if candidate_source == "loop":
            self._matrices = None
        else:
            self._matrices = database.matrices()
            if self._matrices is None and candidate_source != "auto":
                raise InvalidParameterError(
                    f"candidate_source={candidate_source!r} requires a "
                    "database backed by a feature store (store-less "
                    "prefitted filters have no matrix planes)"
                )
            if candidate_source in INDEX_KINDS:
                # built eagerly so the first query does not pay for it
                # inside the read lock; queries re-sync as needed
                self._index = database.candidate_index(candidate_source)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.max_workers = max_workers
        self._cache = _ResultCache(cache_size)
        self._prepared = PreparedTreeCache(prepared_cache_size)
        self._rwlock = _ReadWriteLock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        self._closed = True
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "TreeSearchService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.database)

    def __repr__(self) -> str:
        return (
            f"TreeSearchService({len(self.database)} trees, "
            f"cache={len(self._cache)}/{self._cache.maxsize}, "
            f"workers={self.max_workers})"
        )

    def _pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("service is closed")
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-service",
                )
            return self._executor

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, tree: TreeNode) -> int:
        """Insert one tree; returns its index.

        Exclusive: waits for in-flight queries to drain, then appends and
        **selectively** invalidates the result cache.  A cached answer is
        retained when the database's lower-bound filter proves the new tree
        cannot appear in it — for a range query, the bound between the
        cached query and the new tree exceeds the threshold; for a k-NN
        query, the cached result already has ``k`` members and the bound
        strictly exceeds the current k-th distance (the new tree is then
        provably farther than every cached neighbor).  Everything else is
        evicted.  The prepared-tree cache is kept — preparation depends
        only on the tree object, not on database membership.
        """
        with tracing.span("service.add") as add_span:
            self._rwlock.acquire_write()
            try:
                index = self.database.add(tree)
                if self._index is not None:
                    # extend the candidate index while writes are exclusive,
                    # so queries never pay the sync inside the read section
                    self._index.sync()
                with tracing.span("service.invalidate") as inv_span:
                    retained, evicted = self._cache.prune(
                        self._entry_survives_add(index), self.database.generation
                    )
                    inv_span.set(retained=retained, evicted=evicted)
            finally:
                self._rwlock.release_write()
            add_span.set(index=index, retained=retained, evicted=evicted)
        self.metrics.observe_invalidation(retained=retained, evicted=evicted)
        return index

    def _entry_survives_add(
        self, index: int
    ) -> Callable[[CacheKey, _CacheEntry], bool]:
        """Build the keep-predicate for :meth:`add` of tree ``index``.

        The cached query's signature is recomputed against the *current*
        filter state (vocabularies may have grown since the answer was
        cached), so every bound below is a true edit-distance lower bound.
        """
        flt = self.database.filter
        new_signature = flt.data_signature(index)

        def keep(key: CacheKey, entry: _CacheEntry) -> bool:
            kind, _, parameter = key
            query_signature = flt.signature(entry.query)
            if kind == "range":
                return flt.refutes(query_signature, new_signature, parameter)
            matches = entry.answer[0]
            if len(matches) < int(parameter):
                return False  # the new tree completes an under-full answer
            kth_distance = matches[-1][1]
            return flt.bound(query_signature, new_signature) > kth_distance

        return keep

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------
    def range(self, query: TreeNode, threshold: float) -> QueryAnswer:
        """Filter-and-refine range query (cached, thread-safe)."""
        return self._serve(QueryRequest("range", query, threshold=threshold))

    def knn(self, query: TreeNode, k: int) -> QueryAnswer:
        """Filter-and-refine k-NN query (cached, thread-safe)."""
        return self._serve(QueryRequest("knn", query, k=k))

    def execute(self, request: QueryRequest) -> QueryAnswer:
        """Serve one :class:`QueryRequest` of either kind."""
        return self._serve(request)

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def batch(self, requests: Sequence[QueryRequest]) -> List[QueryAnswer]:
        """Serve a mixed-kind batch concurrently; answers in input order."""
        self.metrics.observe_batch()
        if not requests:
            return []
        if len(requests) == 1:
            return [self._serve(requests[0])]
        # ThreadPoolExecutor workers do not inherit the caller's context, so
        # an active span (or funnel sink) would be invisible to them; give
        # each request a copy of the submitting thread's context.  One copy
        # per request — a single Context cannot be entered concurrently.
        contexts = [contextvars.copy_context() for _ in requests]
        return list(
            self._pool().map(
                lambda pair: pair[0].run(self._serve, pair[1]),
                zip(contexts, requests),
            )
        )

    def batch_range(
        self, queries: Sequence[TreeNode], threshold: float
    ) -> List[QueryAnswer]:
        """Range queries fanned out over the worker pool (input order)."""
        return self.batch(
            [QueryRequest("range", query, threshold=threshold) for query in queries]
        )

    def batch_knn(self, queries: Sequence[TreeNode], k: int) -> List[QueryAnswer]:
        """k-NN queries fanned out over the worker pool (input order)."""
        return self.batch([QueryRequest("knn", query, k=k) for query in queries])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _cache_key(self, request: QueryRequest) -> CacheKey:
        parameter = (
            float(request.threshold) if request.kind == "range" else float(request.k)
        )
        return (request.kind, to_bracket(request.query), parameter)

    def _serve(self, request: QueryRequest) -> QueryAnswer:
        with tracing.span("service.serve", kind=request.kind) as serve_span:
            start = time.perf_counter()
            key = self._cache_key(request)
            cached = self._cache.get(key, self.database.generation)
            if cached is not None:
                matches, stats = cached
                serve_span.set(
                    cache_hit=True, candidates=stats.candidates, results=stats.results
                )
                self.metrics.observe_query(
                    request.kind, stats, time.perf_counter() - start, cache_hit=True
                )
                return list(matches), stats.copy()
            # Per-query counter so `calls` is race-free; preparation is shared.
            counter = EditDistanceCounter(
                self.database.counter.costs, cache=self._prepared
            )
            if self._index is not None and self._index.stale():
                # out-of-band database/store mutation: catch the index up
                # under the write lock before queries race over it
                self._rwlock.acquire_write()
                try:
                    self._index.sync()
                finally:
                    self._rwlock.release_write()
            self._rwlock.acquire_read()
            try:
                if request.kind == "range":
                    matches, stats = range_query(
                        self.database.trees,
                        request.query,
                        request.threshold,
                        self.database.filter,
                        counter,
                        matrices=self._matrices,
                        index=self._index,
                    )
                else:
                    matches, stats = knn_query(
                        self.database.trees,
                        request.query,
                        request.k,
                        self.database.filter,
                        counter,
                        matrices=self._matrices,
                        index=self._index,
                    )
                generation = self.database.generation
            finally:
                self._rwlock.release_read()
            self._cache.put(
                key,
                _CacheEntry((list(matches), stats.copy()), request.query, generation),
            )
            serve_span.set(
                cache_hit=False, candidates=stats.candidates, results=stats.results
            )
            self.metrics.observe_query(
                request.kind, stats, time.perf_counter() - start, cache_hit=False
            )
            return matches, stats
