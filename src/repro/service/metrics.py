"""Process-local serving metrics: counters and latency histograms.

The serving layer's observability surface.  Every query the
:class:`~repro.service.engine.TreeSearchService` executes is folded into a
:class:`ServiceMetrics` instance: how many queries of each kind were served,
how many hit the result cache, how much wall time the filter and refinement
phases consumed (aggregated from :class:`~repro.search.statistics.SearchStats`),
how many candidates were refined, and a log-bucketed latency histogram per
query kind from which percentiles are interpolated.

Everything is process-local and thread-safe; :meth:`ServiceMetrics.snapshot`
returns a plain-``dict`` point-in-time view and :meth:`ServiceMetrics.to_json`
serialises it, so scrapers (or the ``repro serve-bench`` CLI) never hold the
metrics lock for longer than one shallow copy.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence

from repro.search.statistics import SearchStats

__all__ = ["LatencyHistogram", "ServiceMetrics", "percentile"]


def percentile(samples: Sequence[float], p: float) -> float:
    """Exact percentile (nearest-rank) of a sample list.

    ``p`` is in ``[0, 100]``; an empty sample list yields ``0.0``.  Used by
    the workload driver where the full latency list is available.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


def _default_bounds() -> List[float]:
    # 1 µs .. ~100 s in half-decade steps: wide enough for cache hits
    # (microseconds) and pure-Python refinement of large trees (seconds)
    bounds = []
    value = 1e-6
    while value < 100.0:
        bounds.append(value)
        bounds.append(value * 3.1623)  # half a decade
        value *= 10.0
    return bounds


class LatencyHistogram:
    """Fixed-bucket latency histogram with interpolated percentiles.

    Buckets are upper-bound-inclusive like Prometheus histograms; the last
    bucket is implicit ``+inf``.  Percentile estimates interpolate linearly
    inside the winning bucket, which is accurate to within a bucket width —
    plenty for serving dashboards (the workload driver computes exact
    percentiles from raw samples where precision matters).
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None) -> None:
        self.bounds: List[float] = sorted(bounds) if bounds else _default_bounds()
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Fold one observation into the histogram."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if seconds <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @property
    def mean(self) -> float:
        """Mean observed latency (0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def quantile(self, p: float) -> float:
        """Interpolated ``p``-th percentile (0 when empty)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if self.total == 0:
            return 0.0
        target = p / 100 * self.total
        cumulative = 0
        for i, count in enumerate(self.counts):
            if count == 0:
                continue
            previous = cumulative
            cumulative += count
            if cumulative >= target:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                lower = max(lower, self.min if previous == 0 else lower)
                upper = min(upper, self.max)
                if upper <= lower:
                    return upper
                fraction = (target - previous) / count
                return lower + fraction * (upper - lower)
        return self.max

    def to_dict(self) -> Dict[str, object]:
        """Snapshot: count / sum / min / max / mean and key percentiles."""
        return {
            "count": self.total,
            "sum_seconds": self.sum,
            "min_seconds": self.min if self.total else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.mean,
            "p50_seconds": self.quantile(50),
            "p90_seconds": self.quantile(90),
            "p99_seconds": self.quantile(99),
        }


class ServiceMetrics:
    """Thread-safe aggregate of everything a serving layer should expose.

    One instance per :class:`~repro.service.engine.TreeSearchService`;
    multiple services may also share one instance (counters simply sum).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.queries_by_kind: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.dataset_objects_considered = 0
        self.candidates_examined = 0
        self.results_returned = 0
        self.filter_seconds = 0.0
        self.refine_seconds = 0.0
        self.invalidations = 0
        self.cache_entries_retained = 0
        self.cache_entries_evicted = 0
        self._latency: Dict[str, LatencyHistogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_query(
        self,
        kind: str,
        stats: SearchStats,
        latency_seconds: float,
        cache_hit: bool,
    ) -> None:
        """Fold one served query into the aggregate.

        ``stats`` is the query's :class:`SearchStats`; for a cache hit the
        stored stats describe the original computation and only the (tiny)
        lookup latency is recorded as work done now, so filter/refine time
        is attributed once per distinct computation.
        """
        with self._lock:
            self.queries_by_kind[kind] = self.queries_by_kind.get(kind, 0) + 1
            if cache_hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
                self.dataset_objects_considered += stats.dataset_size
                self.candidates_examined += stats.candidates
                self.results_returned += stats.results
                self.filter_seconds += stats.filter_seconds
                self.refine_seconds += stats.refine_seconds
            histogram = self._latency.get(kind)
            if histogram is None:
                histogram = self._latency[kind] = LatencyHistogram()
            histogram.record(latency_seconds)

    def observe_batch(self) -> None:
        """Count one batch submission."""
        with self._lock:
            self.batches += 1

    def observe_invalidation(self, retained: int = 0, evicted: int = 0) -> None:
        """Count one invalidation pass (a database mutation).

        ``retained``/``evicted`` break down what the selective pruner did
        to the result cache: entries proven still valid by the filter's
        lower bound versus entries that had to go.
        """
        with self._lock:
            self.invalidations += 1
            self.cache_entries_retained += retained
            self.cache_entries_evicted += evicted

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        """Total queries served across all kinds."""
        return sum(self.queries_by_kind.values())

    @property
    def cache_hit_rate(self) -> float:
        """Result-cache hit rate over all served queries (0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view as a plain JSON-serialisable dict."""
        with self._lock:
            return {
                "queries_served": self.queries_served,
                "queries_by_kind": dict(self.queries_by_kind),
                "batches": self.batches,
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": self.cache_hit_rate,
                    "invalidations": self.invalidations,
                    "entries_retained": self.cache_entries_retained,
                    "entries_evicted": self.cache_entries_evicted,
                },
                "work": {
                    "dataset_objects_considered": self.dataset_objects_considered,
                    "candidates_examined": self.candidates_examined,
                    "results_returned": self.results_returned,
                    "accessed_percentage": (
                        100.0
                        * self.candidates_examined
                        / self.dataset_objects_considered
                        if self.dataset_objects_considered
                        else 0.0
                    ),
                },
                "seconds": {
                    "filter": self.filter_seconds,
                    "refine": self.refine_seconds,
                    "total": self.filter_seconds + self.refine_seconds,
                },
                "latency": {
                    kind: histogram.to_dict()
                    for kind, histogram in self._latency.items()
                },
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`snapshot` serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every counter and histogram."""
        with self._lock:
            self.queries_by_kind.clear()
            self.cache_hits = 0
            self.cache_misses = 0
            self.batches = 0
            self.dataset_objects_considered = 0
            self.candidates_examined = 0
            self.results_returned = 0
            self.filter_seconds = 0.0
            self.refine_seconds = 0.0
            self.invalidations = 0
            self.cache_entries_retained = 0
            self.cache_entries_evicted = 0
            self._latency.clear()
