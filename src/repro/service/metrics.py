"""Process-local serving metrics: counters and latency histograms.

The serving layer's observability surface.  Every query the
:class:`~repro.service.engine.TreeSearchService` executes is folded into a
:class:`ServiceMetrics` instance: how many queries of each kind were served,
how many hit the result cache, how much wall time the filter and refinement
phases consumed (aggregated from :class:`~repro.search.statistics.SearchStats`),
how many candidates were refined, and a log-bucketed latency histogram per
query kind from which percentiles are interpolated.

Since PR 4 the storage is a :class:`~repro.obs.metrics.MetricsRegistry` —
each ``ServiceMetrics`` owns a private registry by default (so independent
instances never share counters) or can be pointed at a shared one (e.g. the
process-wide :func:`~repro.obs.metrics.get_registry`), in which case several
services' counters simply sum.  The classic attribute API
(``metrics.cache_hits`` etc.) is preserved as read-only views over the
instruments, and :meth:`ServiceMetrics.prometheus_text` exposes everything
in the Prometheus text format.

Everything is process-local and thread-safe; :meth:`ServiceMetrics.snapshot`
returns a plain-``dict`` point-in-time view and :meth:`ServiceMetrics.to_json`
serialises it, so scrapers (or the ``repro serve-bench`` CLI) never hold the
metrics lock for longer than one shallow copy.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional, Sequence

from repro.obs.metrics import HistogramState, MetricsRegistry
from repro.search.statistics import SearchStats

__all__ = ["LatencyHistogram", "ServiceMetrics", "percentile"]


def percentile(samples: Sequence[float], p: float) -> float:
    """Exact percentile (nearest-rank) of a sample list.

    ``p`` is in ``[0, 100]``; an empty sample list yields ``0.0``.  Used by
    the workload driver where the full latency list is available.
    """
    if not 0 <= p <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(p / 100 * (len(ordered) - 1))))
    return ordered[rank]


class LatencyHistogram(HistogramState):
    """Fixed-bucket latency histogram with interpolated percentiles.

    Buckets are upper-bound-inclusive like Prometheus histograms; the last
    bucket is implicit ``+inf``.  Percentile estimates interpolate linearly
    inside the winning bucket, which is accurate to within a bucket width —
    plenty for serving dashboards (the workload driver computes exact
    percentiles from raw samples where precision matters).

    Now a thin alias of :class:`~repro.obs.metrics.HistogramState` with the
    default latency buckets; kept for backwards compatibility.
    """


class ServiceMetrics:
    """Thread-safe aggregate of everything a serving layer should expose.

    One instance per :class:`~repro.service.engine.TreeSearchService`;
    multiple services may also share one instance (counters simply sum).

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to register
        the instruments in — pass :func:`repro.obs.metrics.get_registry`
        to expose this service on the process-wide scrape endpoint, or a
        shared registry to sum several services into one set of series.
        A private registry is created by default, preserving the historic
        per-instance counting semantics.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._queries = r.counter(
            "repro_queries_total", "Queries served, by kind.", ("kind",)
        )
        self._cache_hits = r.counter(
            "repro_cache_hits_total", "Result-cache hits."
        )
        self._cache_misses = r.counter(
            "repro_cache_misses_total", "Result-cache misses."
        )
        self._batches = r.counter(
            "repro_batches_total", "Batch submissions."
        )
        self._objects = r.counter(
            "repro_dataset_objects_considered_total",
            "Database objects scanned by the filter step.",
        )
        self._candidates = r.counter(
            "repro_candidates_examined_total",
            "Filter survivors refined with the exact edit distance.",
        )
        self._results = r.counter(
            "repro_results_returned_total", "Objects in final answers."
        )
        self._phase_seconds = r.counter(
            "repro_phase_seconds_total",
            "CPU seconds per query phase, by phase and query kind.",
            ("phase", "kind"),
        )
        self._invalidations = r.counter(
            "repro_invalidations_total", "Cache invalidation passes (mutations)."
        )
        self._entries_retained = r.counter(
            "repro_cache_entries_retained_total",
            "Cache entries proven valid across a mutation.",
        )
        self._entries_evicted = r.counter(
            "repro_cache_entries_evicted_total",
            "Cache entries dropped by a mutation.",
        )
        self._latency_histogram = r.histogram(
            "repro_query_latency_seconds", "End-to-end query latency.", ("kind",)
        )

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe_query(
        self,
        kind: str,
        stats: SearchStats,
        latency_seconds: float,
        cache_hit: bool,
    ) -> None:
        """Fold one served query into the aggregate.

        ``stats`` is the query's :class:`SearchStats`; for a cache hit the
        stored stats describe the original computation and only the (tiny)
        lookup latency is recorded as work done now, so filter/refine time
        is attributed once per distinct computation.
        """
        with self._lock:
            self._queries.inc(kind=kind)
            if cache_hit:
                self._cache_hits.inc()
            else:
                self._cache_misses.inc()
                self._objects.inc(stats.dataset_size)
                self._candidates.inc(stats.candidates)
                self._results.inc(stats.results)
                self._phase_seconds.inc(
                    stats.filter_seconds, phase="filter", kind=kind
                )
                self._phase_seconds.inc(
                    stats.refine_seconds, phase="refine", kind=kind
                )
            self._latency_histogram.observe(latency_seconds, kind=kind)

    def observe_batch(self) -> None:
        """Count one batch submission."""
        self._batches.inc()

    def observe_invalidation(self, retained: int = 0, evicted: int = 0) -> None:
        """Count one invalidation pass (a database mutation).

        ``retained``/``evicted`` break down what the selective pruner did
        to the result cache: entries proven still valid by the filter's
        lower bound versus entries that had to go.
        """
        with self._lock:
            self._invalidations.inc()
            self._entries_retained.inc(retained)
            self._entries_evicted.inc(evicted)

    # ------------------------------------------------------------------
    # Attribute views (the classic ServiceMetrics API)
    # ------------------------------------------------------------------
    @property
    def queries_by_kind(self) -> Dict[str, int]:
        """Queries served per kind (a fresh dict, safe to mutate)."""
        return {key[0]: int(value) for key, value in self._queries.values().items()}

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value())

    @property
    def cache_misses(self) -> int:
        return int(self._cache_misses.value())

    @property
    def batches(self) -> int:
        return int(self._batches.value())

    @property
    def dataset_objects_considered(self) -> int:
        return int(self._objects.value())

    @property
    def candidates_examined(self) -> int:
        return int(self._candidates.value())

    @property
    def results_returned(self) -> int:
        return int(self._results.value())

    def _phase_total(self, phase: str) -> float:
        return sum(
            value
            for (value_phase, _), value in self._phase_seconds.values().items()
            if value_phase == phase
        )

    @property
    def filter_seconds(self) -> float:
        """Total filtering CPU seconds across every query kind."""
        return self._phase_total("filter")

    @property
    def refine_seconds(self) -> float:
        """Total refinement CPU seconds across every query kind."""
        return self._phase_total("refine")

    def seconds_by_kind(self) -> Dict[str, Dict[str, float]]:
        """Filter/refine/total CPU seconds broken down per query kind."""
        breakdown: Dict[str, Dict[str, float]] = {}
        for (phase, kind), value in sorted(self._phase_seconds.values().items()):
            entry = breakdown.setdefault(kind, {"filter": 0.0, "refine": 0.0})
            entry[phase] = value
        for entry in breakdown.values():
            entry["total"] = entry["filter"] + entry["refine"]
        return breakdown

    @property
    def invalidations(self) -> int:
        return int(self._invalidations.value())

    @property
    def cache_entries_retained(self) -> int:
        return int(self._entries_retained.value())

    @property
    def cache_entries_evicted(self) -> int:
        return int(self._entries_evicted.value())

    @property
    def _latency(self) -> Dict[str, HistogramState]:
        """Per-kind latency series (kept for backwards compatibility)."""
        return {
            key[0]: state
            for key, state in self._latency_histogram.states().items()
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @property
    def queries_served(self) -> int:
        """Total queries served across all kinds."""
        return sum(self.queries_by_kind.values())

    @property
    def cache_hit_rate(self) -> float:
        """Result-cache hit rate over all served queries (0 when idle)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        """Point-in-time view as a plain JSON-serialisable dict."""
        with self._lock:
            return {
                "queries_served": self.queries_served,
                "queries_by_kind": self.queries_by_kind,
                "batches": self.batches,
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": self.cache_hit_rate,
                    "invalidations": self.invalidations,
                    "entries_retained": self.cache_entries_retained,
                    "entries_evicted": self.cache_entries_evicted,
                },
                "work": {
                    "dataset_objects_considered": self.dataset_objects_considered,
                    "candidates_examined": self.candidates_examined,
                    "results_returned": self.results_returned,
                    "accessed_percentage": (
                        100.0
                        * self.candidates_examined
                        / self.dataset_objects_considered
                        if self.dataset_objects_considered
                        else 0.0
                    ),
                },
                "seconds": {
                    "filter": self.filter_seconds,
                    "refine": self.refine_seconds,
                    "total": self.filter_seconds + self.refine_seconds,
                    "by_kind": self.seconds_by_kind(),
                },
                "latency": {
                    kind: histogram.to_dict()
                    for kind, histogram in sorted(self._latency.items())
                },
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        """:meth:`snapshot` serialised as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def prometheus_text(self) -> str:
        """This instance's instruments in the Prometheus text format.

        Convenience passthrough to the backing registry — note a *shared*
        registry exposes every instrument registered in it, not just this
        service's.
        """
        return self.registry.prometheus_text()

    def reset(self) -> None:
        """Zero every counter and histogram owned by this instance.

        Only this service's instruments are reset; unrelated instruments in
        a shared registry are untouched.
        """
        with self._lock:
            for instrument in (
                self._queries,
                self._cache_hits,
                self._cache_misses,
                self._batches,
                self._objects,
                self._candidates,
                self._results,
                self._phase_seconds,
                self._invalidations,
                self._entries_retained,
                self._entries_evicted,
                self._latency_histogram,
            ):
                instrument.reset()
