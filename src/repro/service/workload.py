"""Deterministic synthetic query traffic: generation and replay.

Serving-layer changes (cache sizing, pool width, filter choice) need a
repeatable workload to be comparable across runs.  This module provides

* :func:`generate_workload` — a seeded generator producing a mixed
  range/k-NN query stream over a dataset, with a configurable *repetition*
  fraction (real query traffic is heavily repetitive, which is exactly what
  a result cache exploits);
* :func:`replay` — a driver that fires the stream at a
  :class:`~repro.service.engine.TreeSearchService` either serially or from
  concurrent client threads, timing every query, and reports throughput,
  exact latency percentiles, and the service's metrics snapshot.

Everything is deterministic given the spec's ``seed`` (the concurrent
replay's *interleaving* is scheduler-dependent, but the query stream and
the answers are not).
"""

from __future__ import annotations

import contextvars
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import QueryError
from repro.service.engine import QueryRequest, TreeSearchService
from repro.service.metrics import percentile
from repro.trees.node import TreeNode

__all__ = ["WorkloadSpec", "WorkloadReport", "generate_workload", "replay", "format_report"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of a synthetic query stream.

    ``repeat_fraction`` of the queries re-issue an earlier query verbatim
    (uniformly over history); the rest draw a fresh query tree from the
    dataset.  ``range_fraction`` of the fresh queries are range queries with
    ``threshold``; the others are k-NN with ``k``.
    """

    queries: int = 100
    range_fraction: float = 0.5
    threshold: float = 2.0
    k: int = 3
    repeat_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.queries < 1:
            raise QueryError(f"workload needs >= 1 queries, got {self.queries}")
        for name in ("range_fraction", "repeat_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise QueryError(f"{name} must be in [0, 1], got {value}")


def generate_workload(
    trees: Sequence[TreeNode], spec: WorkloadSpec
) -> List[QueryRequest]:
    """Deterministic query stream over ``trees`` (same spec ⇒ same stream)."""
    if not trees:
        raise QueryError("cannot generate a workload over an empty dataset")
    rng = random.Random(spec.seed)
    stream: List[QueryRequest] = []
    for _ in range(spec.queries):
        if stream and rng.random() < spec.repeat_fraction:
            stream.append(stream[rng.randrange(len(stream))])
            continue
        query = trees[rng.randrange(len(trees))]
        if rng.random() < spec.range_fraction:
            stream.append(QueryRequest("range", query, threshold=spec.threshold))
        else:
            k = min(spec.k, len(trees))
            stream.append(QueryRequest("knn", query, k=k))
    return stream


@dataclass
class WorkloadReport:
    """What one replay measured."""

    mode: str
    queries: int
    clients: int
    wall_seconds: float
    latencies: List[float] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        """Queries completed per wall-clock second."""
        return self.queries / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def total_latency_seconds(self) -> float:
        """Sum of per-query latencies (= serial wall-clock equivalent)."""
        return sum(self.latencies)

    def latency_percentile(self, p: float) -> float:
        """Exact ``p``-th percentile over the recorded per-query latencies."""
        return percentile(self.latencies, p)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable summary (latency list reduced to percentiles)."""
        return {
            "mode": self.mode,
            "queries": self.queries,
            "clients": self.clients,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "latency": {
                "mean_seconds": (
                    self.total_latency_seconds / len(self.latencies)
                    if self.latencies
                    else 0.0
                ),
                "p50_seconds": self.latency_percentile(50),
                "p90_seconds": self.latency_percentile(90),
                "p99_seconds": self.latency_percentile(99),
                "max_seconds": max(self.latencies) if self.latencies else 0.0,
            },
            "metrics": self.metrics,
        }


def replay(
    service: TreeSearchService,
    workload: Sequence[QueryRequest],
    clients: int = 1,
) -> Tuple[List[List[Tuple[int, float]]], WorkloadReport]:
    """Fire ``workload`` at ``service`` and measure it.

    ``clients=1`` replays serially on the calling thread; ``clients>1``
    simulates that many concurrent clients draining a shared queue.  Every
    query's latency is measured around the service call itself, so the
    report's percentiles are exact.  Returns the per-query match lists (in
    workload order — the replay is answer-deterministic regardless of
    interleaving) and the :class:`WorkloadReport`.
    """
    if clients < 1:
        raise QueryError(f"clients must be >= 1, got {clients}")
    answers: List[Optional[List[Tuple[int, float]]]] = [None] * len(workload)
    latencies: List[float] = [0.0] * len(workload)

    def serve_one(position: int) -> None:
        begin = time.perf_counter()
        matches, _ = service.execute(workload[position])
        latencies[position] = time.perf_counter() - begin
        answers[position] = matches

    start = time.perf_counter()
    if clients == 1:
        for position in range(len(workload)):
            serve_one(position)
    else:
        # copy the caller's context per query so an active funnel sink or
        # span survives the hop into the client threads (one copy per
        # query — a single Context cannot be entered concurrently)
        contexts = [contextvars.copy_context() for _ in workload]
        with ThreadPoolExecutor(
            max_workers=clients, thread_name_prefix="repro-client"
        ) as pool:
            # list() propagates the first worker exception, if any
            list(
                pool.map(
                    lambda position: contexts[position].run(serve_one, position),
                    range(len(workload)),
                )
            )
    wall = time.perf_counter() - start
    report = WorkloadReport(
        mode="serial" if clients == 1 else f"concurrent×{clients}",
        queries=len(workload),
        clients=clients,
        wall_seconds=wall,
        latencies=latencies,
        metrics=service.metrics.snapshot(),
    )
    return [matches if matches is not None else [] for matches in answers], report


def format_report(report: WorkloadReport) -> str:
    """Human-readable multi-line summary of one replay."""
    summary = report.to_dict()
    latency = summary["latency"]
    cache = report.metrics.get("cache", {}) if report.metrics else {}
    seconds = report.metrics.get("seconds", {}) if report.metrics else {}
    lines = [
        f"mode:            {report.mode}",
        f"queries:         {report.queries}",
        f"wall seconds:    {report.wall_seconds:.4f}",
        f"throughput:      {report.throughput_qps:.1f} queries/s",
        (
            "latency:         "
            f"p50 {latency['p50_seconds'] * 1000:.2f} ms · "
            f"p90 {latency['p90_seconds'] * 1000:.2f} ms · "
            f"p99 {latency['p99_seconds'] * 1000:.2f} ms · "
            f"max {latency['max_seconds'] * 1000:.2f} ms"
        ),
    ]
    if cache:
        lines.append(
            f"result cache:    {cache['hits']} hits / {cache['misses']} misses "
            f"(hit rate {cache['hit_rate']:.1%})"
        )
    if seconds:
        lines.append(
            f"cpu seconds:     filter {seconds['filter']:.4f} · "
            f"refine {seconds['refine']:.4f}"
        )
    return "\n".join(lines)
