"""Query-serving layer: concurrency, caching, batching, observability.

The library's filter-and-refine algorithms answer one query at a time; this
package turns them into a *service*:

* :class:`~repro.service.engine.TreeSearchService` — a thread-safe facade
  over :class:`~repro.search.database.TreeDatabase` with a bounded LRU
  result cache, a shared prepared-tree cache, and batch fan-out;
* :class:`~repro.service.metrics.ServiceMetrics` — process-local counters
  and latency histograms with a JSON snapshot export;
* :mod:`~repro.service.workload` — a deterministic synthetic traffic
  generator and replay driver (``repro serve-bench``).

Later scaling work (sharding, async backends, multi-process serving) builds
on these interfaces.
"""

from repro.service.engine import QueryRequest, TreeSearchService
from repro.service.metrics import LatencyHistogram, ServiceMetrics, percentile
from repro.service.workload import (
    WorkloadReport,
    WorkloadSpec,
    format_report,
    generate_workload,
    replay,
)

__all__ = [
    "TreeSearchService",
    "QueryRequest",
    "ServiceMetrics",
    "LatencyHistogram",
    "percentile",
    "WorkloadSpec",
    "WorkloadReport",
    "generate_workload",
    "replay",
    "format_report",
]
