"""Shared-memory feature planes: packed columns published once, read N times.

A shard worker needs the packed branch vectors of *its* trees to fit a
store-backed filter.  Pickling every ``array('q')`` column through the
worker pipe would copy the whole feature plane per process; instead the
coordinator flattens the columns into one
:class:`multiprocessing.shared_memory.SharedMemory` segment per shard and
ships only a tiny picklable :class:`PlaneHandle` (segment name + span
table).  The worker attaches the segment and rebuilds each
:class:`~repro.features.packed.PackedVector` as two
``memoryview(...).cast('q')`` slices — zero bytes of feature data cross
the pipe, and both processes read the same physical pages.

Segment layout (all int64 words)::

    for q in q_levels:            # concatenated, coordinator-chosen order
        for tree in shard:        # ascending local index
            dims[0..n)            # strictly ascending interned dimension ids
            counts[0..n)          # parallel occurrence counts

Lifecycle: the *publishing* side (coordinator) creates the segment and is
responsible for ``unlink``; every side that attached must ``close``.
:meth:`SharedFeaturePlane.close` first flips :attr:`closed` (so borrowed
vectors start raising
:class:`~repro.exceptions.SharedPlaneClosedError` instead of reading
released memory), then detaches the vectors it handed out, releases its
views and closes — and, on the owning side, unlinks — the segment.  The
coordinator additionally arms a :func:`weakref.finalize` so segments are
reclaimed even when nobody calls ``close`` (see
:class:`repro.sharding.coordinator.ShardedTreeService`).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.features.packed import PackedVector
from repro.features.store import FeatureStore
from repro.features.vocabulary import Vocabulary

__all__ = ["PlaneHandle", "SharedFeaturePlane"]


@dataclass(frozen=True)
class PlaneHandle:
    """Everything a worker needs to attach a plane: name + span table.

    Plain picklable data — this is the only plane artifact that crosses a
    process boundary.
    """

    #: shared-memory segment name (``SharedMemory(name=...)`` attaches it)
    name: str
    #: branch levels, in segment order
    q_levels: Tuple[int, ...]
    #: ``|T|`` per tree (local index order; q-independent)
    sizes: Tuple[int, ...]
    #: per q level: one ``(word offset, dimension count)`` span per tree
    spans: Dict[int, Tuple[Tuple[int, int], ...]]
    #: total payload length in int64 words
    words: int


class SharedFeaturePlane:
    """One shard's packed feature columns in a shared-memory segment.

    Construct via :meth:`publish` (creating side) or :meth:`attach`
    (worker side); never directly.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        handle: PlaneHandle,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.handle = handle
        self._owner = owner
        self._closed = False
        # cast over the whole mapping: segment sizes are multiples of 8
        # (we allocate words*8 bytes and the kernel rounds up to pages)
        self._view: Optional[memoryview] = memoryview(shm.buf).cast("q")
        self._vectors: List[PackedVector] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def publish(
        cls,
        store: FeatureStore,
        indices: Optional[Sequence[int]] = None,
    ) -> "SharedFeaturePlane":
        """Copy the packed columns of ``indices`` (default: all trees of
        ``store``) into a fresh shared-memory segment.

        This is the single copy of the whole scheme — every subsequent
        reader is zero-copy.  Only data-side vectors can be published;
        vectors with out-of-vocabulary ``extra`` entries (query-side) are
        rejected because the layout has no slot for raw branch keys.
        """
        if indices is None:
            indices = range(len(store))
        q_levels = store.q_levels
        sizes = tuple(store.tree_size(index) for index in indices)
        spans: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        offset = 0
        columns: List[PackedVector] = []
        for q in q_levels:
            q_spans = []
            for index in indices:
                vector = store.packed_vector(index, q)
                if vector.extra:
                    raise InvalidParameterError(
                        f"tree {index} has {len(vector.extra)} "
                        "out-of-vocabulary branches; only data-side "
                        "vectors can be published to a shared plane"
                    )
                q_spans.append((offset, len(vector.dims)))
                offset += 2 * len(vector.dims)
                columns.append(vector)
            spans[q] = tuple(q_spans)
        handle_words = offset
        shm = shared_memory.SharedMemory(
            create=True, size=max(8, handle_words * 8)
        )
        handle = PlaneHandle(
            name=shm.name,
            q_levels=q_levels,
            sizes=sizes,
            spans=spans,
            words=handle_words,
        )
        view = memoryview(shm.buf).cast("q")
        position = 0
        for vector in columns:
            n = len(vector.dims)
            view[position : position + n] = array("q", vector.dims)
            view[position + n : position + 2 * n] = array("q", vector.counts)
            position += 2 * n
        view.release()
        return cls(shm, handle, owner=True)

    @classmethod
    def attach(cls, handle: PlaneHandle) -> "SharedFeaturePlane":
        """Map an already published segment (worker side; zero-copy)."""
        shm = shared_memory.SharedMemory(name=handle.name)
        return cls(shm, handle, owner=False)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Liveness flag the borrowed vectors key their guard off."""
        return self._closed

    @property
    def owner(self) -> bool:
        """Whether this side created (and must unlink) the segment."""
        return self._owner

    def __len__(self) -> int:
        return len(self.handle.sizes)

    def vectors(self, q: int) -> List[PackedVector]:
        """Borrowed packed vectors at level ``q``, one per shard tree.

        The columns are ``memoryview`` slices over the shared segment —
        no copy — and each vector carries this plane as its ``owner`` so
        use-after-close raises instead of reading released memory.
        """
        if self._closed or self._view is None:
            raise InvalidParameterError("plane is closed")
        if q not in self.handle.spans:
            raise InvalidParameterError(
                f"plane has no q={q} column (levels: {self.handle.q_levels})"
            )
        view = self._view
        built: List[PackedVector] = []
        for local, (offset, n) in enumerate(self.handle.spans[q]):
            vector = PackedVector(
                view[offset : offset + n],
                view[offset + n : offset + 2 * n],
                self.handle.sizes[local],
                q,
                owner=self,
            )
            built.append(vector)
        self._vectors.extend(built)
        return built

    def store(self, vocabulary: Vocabulary) -> FeatureStore:
        """A packed-only :class:`FeatureStore` over this plane.

        ``vocabulary`` is the coordinator's interning table (shipped once
        per worker); the resulting store serves every store-backed filter
        that runs on packed vectors without re-extracting a single tree.
        """
        packed = {q: self.vectors(q) for q in self.handle.q_levels}
        return FeatureStore.from_packed(vocabulary, packed, self.handle.q_levels)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the mapping; the owning side also unlinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for vector in self._vectors:
            vector.detach()
        self._vectors.clear()
        if self._view is not None:
            self._view.release()
            self._view = None
        try:
            self._shm.close()
        except BufferError:
            # an external holder still exports a slice; the mapping stays
            # until process exit, but the name must not outlive us
            pass
        if self._owner:
            self._shm.unlink()

    def __enter__(self) -> "SharedFeaturePlane":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"SharedFeaturePlane({self.handle.name!r}, {len(self)} trees, "
            f"q_levels={self.handle.q_levels}, {state})"
        )
