"""Corpus partitioners and the global ↔ shard-local index bookkeeping.

A partitioner decides which shard owns a tree; the decision may use the
tree's global index (round-robin) or its structure (size-banded).  Both
built-ins are deterministic functions of ``(index, tree)``, which is what
makes sharded answers reproducible: the same corpus in the same order
always lands in the same layout.

The :class:`ShardAssignment` records the layout both ways — global index →
``(shard, local)`` and shard → ascending global indices.  Appending only
ever extends the maps, mirroring the append-only semantics of
:meth:`repro.search.database.TreeDatabase.add`, and within each shard the
local order preserves the ascending global order.  That monotonicity is
what lets the coordinator merge per-shard k-NN frontiers (sorted by
``(bound, local)``) into the exact global ``(bound, index)`` refinement
order of the single-process Algorithm 2.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Tuple

from repro.exceptions import InvalidParameterError
from repro.trees.node import TreeNode

__all__ = [
    "Partitioner",
    "RoundRobinPartitioner",
    "SizeBandedPartitioner",
    "ShardAssignment",
    "PARTITIONERS",
    "make_partitioner",
]


class Partitioner(ABC):
    """Deterministic tree → shard placement policy."""

    #: registry key / display name ("round-robin", "size-banded", …)
    name: str = "abstract"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise InvalidParameterError(f"need >= 1 shards, got {shards}")
        self.shards = shards

    @abstractmethod
    def assign(self, index: int, tree: TreeNode) -> int:
        """Shard id in ``[0, shards)`` for the tree at global ``index``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shards={self.shards})"


class RoundRobinPartitioner(Partitioner):
    """``index % shards`` — balanced counts, structure-agnostic."""

    name = "round-robin"

    def assign(self, index: int, tree: TreeNode) -> int:
        return index % self.shards


class SizeBandedPartitioner(Partitioner):
    """Groups trees of similar size: ``(|T| // band_width) % shards``.

    Trees within one size band co-locate, so a range query whose size
    bound refutes a whole band does all that refuting inside one worker —
    the other shards' filter passes stay cheap.  The modulo wraps bands
    around the shards to keep the placement total.
    """

    name = "size-banded"

    def __init__(self, shards: int, band_width: int = 8) -> None:
        super().__init__(shards)
        if band_width < 1:
            raise InvalidParameterError(
                f"band width must be >= 1, got {band_width}"
            )
        self.band_width = band_width

    def assign(self, index: int, tree: TreeNode) -> int:
        return (tree.size // self.band_width) % self.shards


class ShardAssignment:
    """Bidirectional global ↔ (shard, local) index maps, append-only."""

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise InvalidParameterError(f"need >= 1 shards, got {shards}")
        self.shards = shards
        #: shard → ascending global indices (local index = list position)
        self.by_shard: List[List[int]] = [[] for _ in range(shards)]
        #: global index → (shard, local index)
        self.locate: List[Tuple[int, int]] = []

    def append(self, shard: int) -> Tuple[int, int]:
        """Place the next global index on ``shard``; returns (global, local)."""
        if not 0 <= shard < self.shards:
            raise InvalidParameterError(
                f"shard {shard} out of range [0, {self.shards})"
            )
        global_index = len(self.locate)
        local_index = len(self.by_shard[shard])
        self.by_shard[shard].append(global_index)
        self.locate.append((shard, local_index))
        return global_index, local_index

    def __len__(self) -> int:
        return len(self.locate)

    def shard_sizes(self) -> List[int]:
        """Number of trees on each shard."""
        return [len(indices) for indices in self.by_shard]

    def __repr__(self) -> str:
        return (
            f"ShardAssignment({len(self)} trees over {self.shards} shards: "
            f"{self.shard_sizes()})"
        )


PARTITIONERS: Dict[str, Callable[[int], Partitioner]] = {
    RoundRobinPartitioner.name: RoundRobinPartitioner,
    SizeBandedPartitioner.name: SizeBandedPartitioner,
}


def make_partitioner(name: str, shards: int) -> Partitioner:
    """Instantiate a registered partitioner by name."""
    try:
        factory = PARTITIONERS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown partitioner {name!r} "
            f"(choose from {sorted(PARTITIONERS)})"
        ) from None
    return factory(shards)
