"""repro.sharding — shard-parallel scatter-gather serving.

The corpus is partitioned into N shards (:mod:`repro.sharding.partition`),
each hosted by a persistent worker process
(:mod:`repro.sharding.worker`) whose packed feature columns live in a
shared-memory plane (:mod:`repro.sharding.plane`), and the
:class:`~repro.sharding.coordinator.ShardedTreeService` scatters range
queries shard-parallel and merges per-shard lower-bound frontiers for
distributed optimal multi-step k-NN — answer-identical to the
single-process path (see ``docs/SHARDING.md`` for the argument and the
``service:shard-equivalence`` oracle for the enforcement).
"""

from repro.sharding.coordinator import ShardedTreeService, encode_query
from repro.sharding.partition import (
    PARTITIONERS,
    Partitioner,
    RoundRobinPartitioner,
    ShardAssignment,
    SizeBandedPartitioner,
    make_partitioner,
)
from repro.sharding.plane import PlaneHandle, SharedFeaturePlane

__all__ = [
    "ShardedTreeService",
    "encode_query",
    "PARTITIONERS",
    "Partitioner",
    "RoundRobinPartitioner",
    "SizeBandedPartitioner",
    "ShardAssignment",
    "make_partitioner",
    "PlaneHandle",
    "SharedFeaturePlane",
]
