"""Shard worker process: one corpus partition served over a pipe.

Each worker owns one shard end-to-end — the shard's trees (shipped as
bracket strings; the recursive ``TreeNode`` objects never cross a pipe),
a packed-only :class:`~repro.features.store.FeatureStore` attached
zero-copy over the coordinator's shared-memory plane, a locally fitted
lower-bound filter, and a persistent
:class:`~repro.editdist.zhang_shasha.EditDistanceCounter` whose
prepared-tree cache survives across queries.

The protocol is a strict request/response loop over a
``multiprocessing.Pipe`` connection: the coordinator serialises access per
worker, so the worker is single-threaded and lock-free.  Requests are
tuples ``(op, *operands)``; replies are ``("ok", result)`` or
``("error", exception_type, message)``.  Ops:

=================  =====================================================
``ping``           liveness / shard summary
``range``          one complete range query over the shard
``knn_begin``      compute + sort this shard's lower bounds, stream the
                   first frontier chunk of ``(bound, local_index)`` pairs
``knn_more``       next frontier chunk for an open k-NN cursor
``knn_refine``     exact edit distance to one local tree
``knn_end``        drop a k-NN cursor
``add``            insert one tree (bracket form) into the shard
``info``           counters for diagnostics
``health``         health telemetry: per-op request counts, cumulative
                   per-stage seconds, open cursors, RSS, uptime
``shutdown``       acknowledge and exit the loop
=================  =====================================================

k-NN is split into begin/more/refine because Algorithm 2's optimal
stopping is a *global* decision: the coordinator merges every shard's
ascending frontier and asks for exact distances one candidate at a time,
so the distributed query refines exactly the candidates the
single-process run refines (see ``docs/SHARDING.md``).
"""

from __future__ import annotations

import time
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.editdist.costs import UNIT_COSTS
from repro.editdist.zhang_shasha import EditDistanceCounter, PreparedTreeCache
from repro.exceptions import InvalidParameterError, ShardError
from repro.filters.base import LowerBoundFilter
from repro.filters.binary_branch import BinaryBranchFilter, BranchCountFilter
from repro.filters.histogram import HistogramFilter
from repro.filters.traversal_string import TraversalStringFilter
from repro.obs.funnel import collect_funnels
from repro.search.database import TreeDatabase
from repro.search.range_query import range_query
from repro.sharding.plane import PlaneHandle, SharedFeaturePlane
from repro.trees.parse import parse_bracket

__all__ = ["FILTER_FACTORIES", "FRONTIER_CHUNK", "run_worker"]

#: Filter constructors a worker can instantiate by name (CLI spellings).
FILTER_FACTORIES: Dict[str, Type[LowerBoundFilter]] = {
    "bibranch": BinaryBranchFilter,
    "bibranchcount": BranchCountFilter,
    "histogram": HistogramFilter,
    "traversal": TraversalStringFilter,
}

#: ``(bound, local_index)`` pairs per k-NN frontier message.  Chunking
#: bounds the per-message payload while keeping the common case (the
#: merge stops early) to a single round trip per shard.
FRONTIER_CHUNK = 64

#: Ops the request loop will dispatch; anything else is a protocol error.
_OPS = frozenset(
    {"ping", "range", "knn_begin", "knn_more", "knn_refine", "knn_end",
     "add", "info", "health"}
)


class _KnnCursor:
    """Ascending ``(bound, local)`` frontier for one open k-NN query.

    The eager path materializes the whole shard's frontier at
    ``knn_begin``.  The index path instead holds the lazy
    :class:`~repro.index.ordering.OrderedBoundStream` iterator and only
    extends the materialized prefix when the coordinator's global merge
    actually asks for a deeper window — values and order are the exact
    reference frontier either way, so the coordinator cannot tell the
    two apart (and the refined-candidate counts stay bit-identical).
    """

    def __init__(
        self,
        query: Any,
        pairs: List[Tuple[float, int]],
        stream: Optional[Any] = None,
    ) -> None:
        self.query = query
        self._pairs = pairs
        self._stream = stream

    def window(self, start: int, size: int) -> List[Tuple[float, int]]:
        while self._stream is not None and len(self._pairs) < start + size:
            head = next(self._stream, None)
            if head is None:
                self._stream = None
            else:
                self._pairs.append((float(head[0]), head[1]))
        return self._pairs[start : start + size]

    def drain(self) -> None:
        """Materialize the rest of the frontier (pre-mutation snapshot)."""
        if self._stream is not None:
            self._pairs.extend(
                (float(bound), local) for bound, local in self._stream
            )
            self._stream = None


class _ShardState:
    """Everything one worker process holds between requests."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        self.shard: int = payload["shard"]
        trees = [parse_bracket(bracket) for bracket in payload["brackets"]]
        handle: PlaneHandle = payload["plane"]
        self.plane = SharedFeaturePlane.attach(handle)
        store = self.plane.store(payload["vocabulary"])
        flt = self._fit_filter(payload["filter"], store, trees)
        self.db = TreeDatabase(trees, flt=flt, feature_store=store)
        #: corpus-level matrix planes over the attached store.  The dense
        #: rows are scattered zero-copy out of the shared-memory columns
        #: (np.frombuffer over the borrowed memoryviews — no intermediate
        #: python lists); filters whose kernels need artifacts the plane
        #: does not carry (histograms) fall back per stage to the loop.
        source = payload.get("candidate_source", "auto")
        if source == "loop":
            self.matrices = None
        else:
            self.matrices = store.matrices()
        #: shard-local candidate index (vptree/ifi sources); built over the
        #: attached store, so its BDist vectors are the coordinator's rows
        from repro.index import INDEX_KINDS

        self.index = (
            self.db.candidate_index(source) if source in INDEX_KINDS else None
        )
        self.counter = EditDistanceCounter(
            UNIT_COSTS,
            cache=PreparedTreeCache(payload.get("prepared_cache_size", 4096)),
        )
        #: open k-NN cursors: qid -> ascending (bound, local) frontier
        self._knn: Dict[int, _KnnCursor] = {}
        #: health telemetry, all cumulative since worker start
        self.started = time.monotonic()
        self.requests: Dict[str, int] = {}
        self.stage_seconds: Dict[str, float] = {"filter": 0.0, "refine": 0.0}

    @staticmethod
    def _fit_filter(
        name: str, store: Any, trees: List[Any]
    ) -> LowerBoundFilter:
        """Fit the shard filter, zero-copy from the plane when possible.

        Filters whose signatures are packed vectors (BiBranchCount) fit
        straight off the attached store — no tree traversal at all, and
        the store's vocabulary (the coordinator's) keeps query-side
        interning identical across shards.  Filters needing artifacts the
        plane does not carry (positional profiles, histograms) fall back
        to a local fit over the shard's trees; their signatures are
        per-tree, so the bounds still match the single-process filter.
        """
        factory = FILTER_FACTORIES[name]
        flt = factory()
        if flt.supports_store:
            try:
                return flt.fit_from_store(store)
            except InvalidParameterError:
                flt = factory()  # discard the partially fitted instance
        return flt.fit(trees)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return {"shard": self.shard, "trees": len(self.db)}

    def range(
        self, bracket: str, threshold: float, want_funnel: bool
    ) -> Dict[str, Any]:
        query = parse_bracket(bracket)
        stages: Optional[List[Tuple[str, int, int, float]]] = None
        if want_funnel:
            with collect_funnels() as sink:
                matches, stats = range_query(
                    self.db.trees, query, threshold, self.db.filter,
                    self.counter, matrices=self.matrices, index=self.index,
                )
            funnel = sink.funnels[0]
            stages = [
                (stage.name, stage.entered, stage.survivors, stage.seconds)
                for stage in funnel.stages
            ]
        else:
            matches, stats = range_query(
                self.db.trees, query, threshold, self.db.filter,
                self.counter, matrices=self.matrices, index=self.index,
            )
        self.stage_seconds["filter"] += stats.filter_seconds
        self.stage_seconds["refine"] += stats.refine_seconds
        return {
            "matches": matches,
            "candidates": stats.candidates,
            "results": stats.results,
            "filter_seconds": stats.filter_seconds,
            "refine_seconds": stats.refine_seconds,
            "stages": stages,
        }

    def knn_begin(self, qid: int, bracket: str) -> Dict[str, Any]:
        query = parse_bracket(bracket)
        start = time.perf_counter()
        flt = self.db.filter
        use_index = (
            self.index is not None
            and flt.bdist_dominant
            and getattr(flt, "q", None) == self.index.q
        )
        if use_index:
            assert self.index is not None
            self.index.sync()
            from repro.index.ordering import OrderedBoundStream

            query_signature = flt.signature(query)
            stream = OrderedBoundStream(
                self.index,
                lambda row: flt.bound(query_signature, flt.data_signature(row)),
                self.index.pack(query),
            )
            self._knn[qid] = _KnnCursor(query, [], iter(stream))
        else:
            bounds: Optional[List[float]] = None
            if self.matrices is not None:
                # exact vectorized bounds only — the coordinator's global
                # optimal-stopping merge compares these values across
                # shards, so an approximation would change refined counts
                vectorized = flt.lower_bounds_matrix(
                    flt.signature(query), self.matrices
                )
                if vectorized is not None:
                    bounds = [float(value) for value in vectorized]
            if bounds is None:
                bounds = flt.bounds(query)
            order = sorted(
                range(len(bounds)), key=lambda index: (bounds[index], index)
            )
            self._knn[qid] = _KnnCursor(
                query, [(float(bounds[local]), local) for local in order]
            )
        filter_seconds = time.perf_counter() - start
        self.stage_seconds["filter"] += filter_seconds
        return {
            "filter_seconds": filter_seconds,
            "total": len(self.db),
            "chunk": self._chunk(qid, 0),
        }

    def knn_more(self, qid: int, start: int) -> Dict[str, Any]:
        return {"chunk": self._chunk(qid, start)}

    def _chunk(self, qid: int, start: int) -> List[Tuple[float, int]]:
        return self._cursor(qid).window(start, FRONTIER_CHUNK)

    def knn_refine(self, qid: int, local: int) -> Dict[str, Any]:
        query = self._cursor(qid).query
        start = time.perf_counter()
        distance = self.counter.distance(query, self.db.trees[local])
        self.stage_seconds["refine"] += time.perf_counter() - start
        return {"distance": distance}

    def knn_end(self, qid: int) -> None:
        self._knn.pop(qid, None)

    def _cursor(self, qid: int) -> _KnnCursor:
        try:
            return self._knn[qid]
        except KeyError:
            raise ShardError(
                f"shard {self.shard}: no open k-NN cursor {qid}"
            ) from None

    def add(self, bracket: str) -> Dict[str, Any]:
        # open lazy cursors iterate over the candidate index; snapshot
        # them before the mutation so they keep their begin-time frontier
        # (matching the eager path's materialize-at-begin semantics)
        for cursor in self._knn.values():
            cursor.drain()
        local = self.db.add(parse_bracket(bracket))
        return {"local": local, "trees": len(self.db)}

    def info(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "trees": len(self.db),
            "filter": self.db.filter.name,
            "distance_computations": self.counter.calls,
            "open_cursors": len(self._knn),
        }

    def note_request(self, op: str) -> None:
        """Count one dispatched request (op names are the bounded _OPS set)."""
        self.requests[op] = self.requests.get(op, 0) + 1

    def health(self) -> Dict[str, Any]:
        """Everything the coordinator's health snapshot needs, one reply.

        All values are cumulative since worker start (the coordinator
        turns them into gauges); RSS comes from ``getrusage`` so the
        probe costs no /proc reads on the serving process.
        """
        from repro.perf.resources import rss_bytes

        return {
            "shard": self.shard,
            "trees": len(self.db),
            "uptime_seconds": time.monotonic() - self.started,
            "rss_bytes": rss_bytes(),
            "requests": dict(self.requests),
            "requests_total": sum(self.requests.values()),
            "stage_seconds": dict(self.stage_seconds),
            "open_cursors": len(self._knn),
            "distance_computations": self.counter.calls,
        }

    def close(self) -> None:
        self._knn.clear()
        self.plane.close()


def run_worker(conn: Connection, payload: Dict[str, Any]) -> None:
    """Process entry point: serve the shard until ``shutdown`` or EOF.

    Every per-request failure is reported back to the coordinator as an
    ``("error", type, message)`` reply — the worker must survive a bad
    query to keep serving the shard, and the coordinator re-raises the
    error in the caller's process, so nothing is swallowed.
    """
    state = _ShardState(payload)
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break  # coordinator went away; exit quietly
            op = message[0]
            if op == "shutdown":
                conn.send(("ok", None))
                break
            try:
                if op not in _OPS:
                    raise ShardError(f"unknown shard op {op!r}")
                state.note_request(op)
                result = getattr(state, op)(*message[1:])
            except Exception as error:  # repro-lint: disable=RL008 -- protocol boundary: the failure is shipped to the coordinator and re-raised there
                conn.send(("error", type(error).__name__, str(error)))
            else:
                conn.send(("ok", result))
    finally:
        state.close()
        conn.close()
