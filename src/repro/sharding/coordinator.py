"""ShardedTreeService — scatter-gather serving over worker processes.

The coordinator partitions the corpus (:mod:`repro.sharding.partition`),
publishes each shard's packed feature columns into a shared-memory plane
(:mod:`repro.sharding.plane`), forks one persistent worker process per
shard (:mod:`repro.sharding.worker`), and serves:

* **range queries** shard-parallel: every worker filters and refines its
  partition concurrently; the coordinator concatenates the matches in
  global index order.  Correct because every filter's signature is
  per-tree and every bound is pairwise — no corpus-global state — so a
  shard refutes exactly the candidates the single-process filter refutes.
* **k-NN queries** via a distributed version of the optimal multi-step
  algorithm (paper Alg. 2): each worker sorts its lower bounds once and
  streams an ascending ``(bound, local_index)`` frontier; the coordinator
  k-way-merges the frontiers keyed by ``(bound, global_index)`` — exactly
  the single-process refinement order — refining one candidate at a time
  and stopping when the result heap is full and the next frontier bound
  strictly exceeds the k-th distance.  Same refinement set, same answers,
  same tie-handling; the ``shard:knn-optimality`` oracle enforces it.

``shards=1`` skips all of this and delegates to the battle-tested
single-process :class:`~repro.service.engine.TreeSearchService` (with its
result cache).  With ``shards > 1`` there is no cross-process result
cache — every query is counted as a miss, mirroring the single-process
``cache_size=0`` semantics.

Mutations (:meth:`ShardedTreeService.add`) route the new tree to its
shard under the writer side of a read/write lock, so queries never see a
torn insert.  Shutdown is triple-redundant: an explicit :meth:`close`, a
``weakref.finalize`` on the coordinator, and the interpreter's atexit
hook all funnel into one idempotent backend teardown that stops the
workers and unlinks every shared-memory segment.
"""

from __future__ import annotations

import contextvars
import heapq
import itertools
import multiprocessing
import threading
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import InvalidParameterError, QueryError, ShardError
from repro.features.store import FeatureStore
from repro.index import CANDIDATE_SOURCES, INDEX_KINDS
from repro.obs import tracing
from repro.obs.funnel import FilterFunnel, FunnelStage, active_sink
from repro.search.database import TreeDatabase
from repro.search.statistics import SearchStats
from repro.service.engine import (
    QueryRequest,
    TreeSearchService,
    _ReadWriteLock,
)
from repro.service.metrics import ServiceMetrics
from repro.sharding.partition import (
    Partitioner,
    ShardAssignment,
    make_partitioner,
)
from repro.sharding.plane import SharedFeaturePlane
from repro.sharding.worker import FILTER_FACTORIES, run_worker
from repro.trees.node import TreeNode
from repro.trees.parse import to_bracket

__all__ = ["ShardedTreeService", "encode_query"]

#: A query's answer, matching the single-process service exactly.
QueryAnswer = Tuple[List[Tuple[int, float]], SearchStats]


def encode_query(request: QueryRequest) -> Tuple[str, str, float]:
    """The picklable wire form of a query: ``(kind, bracket, parameter)``.

    Pure function of the request — no tree objects, no closures, no
    references into coordinator state — which is what keeps the scatter
    hot path free of deep-recursive :class:`TreeNode` pickling (the
    zero-copy property the benchmark asserts).
    """
    parameter = (
        float(request.threshold) if request.kind == "range" else float(request.k)
    )
    return (request.kind, to_bracket(request.query), parameter)


class _ShardClient:
    """Coordinator-side endpoint of one worker: process + pipe + lock.

    The lock serialises the request/response exchange per worker (the
    pipe is a stream; interleaved writers would corrupt framing).  The
    precomputed ``label`` keeps the per-shard metric label a bounded
    constant, never built on the hot path.
    """

    __slots__ = ("shard", "process", "conn", "lock", "label")

    def __init__(self, shard: int, process, conn) -> None:
        self.shard = shard
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.label = str(shard)


#: (metric name, worker health-reply key, help) for the scalar health gauges
_HEALTH_GAUGES = (
    ("repro_shard_trees", "trees", "Trees resident on the shard."),
    (
        "repro_shard_uptime_seconds",
        "uptime_seconds",
        "Seconds since the shard worker started.",
    ),
    (
        "repro_shard_rss_bytes",
        "rss_bytes",
        "Peak resident set size of the shard worker process.",
    ),
    (
        "repro_shard_requests_total",
        "requests_total",
        "Requests the shard worker has served.",
    ),
    (
        "repro_shard_open_cursors",
        "open_cursors",
        "k-NN frontier cursors currently open on the shard.",
    ),
    (
        "repro_shard_distance_computations",
        "distance_computations",
        "Exact tree-edit distances the shard has computed.",
    ),
)

#: trees max/min ratio beyond which health() flags a placement imbalance
_TREE_IMBALANCE_RATIO = 1.5
#: busy-seconds max/min ratio beyond which health() flags a load imbalance
_LOAD_IMBALANCE_RATIO = 4.0
#: ignore load skew until the busiest shard has at least this much work
_LOAD_IMBALANCE_FLOOR_SECONDS = 0.05


def _shutdown_backends(
    clients: List[_ShardClient], planes: List[SharedFeaturePlane]
) -> None:
    """Stop every worker and unlink every segment (idempotent, self-free).

    Module-level on purpose: it is the target of a ``weakref.finalize``
    on the service, so it must not capture the service itself.  Runs at
    explicit ``close()``, at garbage collection of the service, or at
    interpreter exit — whichever comes first; the later ones no-op.
    """
    for client in clients:
        try:
            with client.lock:
                # holding client.lock across the pipe round-trip is the
                # design: the lock exists to serialize request/response
                # framing on this connection (see _call); RL009 rightly
                # flags the shape, and we accept it per-connection
                # repro-lint: disable=RL009
                client.conn.send(("shutdown",))
                # repro-lint: disable=RL009
                client.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass  # worker already gone; join/terminate below still runs
        try:
            client.conn.close()
        except OSError:
            pass
    for client in clients:
        client.process.join(timeout=5)
        if client.process.is_alive():
            client.process.terminate()
            client.process.join(timeout=1)
    for plane in planes:
        plane.close()


class _Frontier:
    """One shard's ascending ``(bound, local)`` stream, chunk-buffered."""

    __slots__ = ("entries", "cursor", "fetched", "total")

    def __init__(self, entries: List[Tuple[float, int]], total: int) -> None:
        self.entries = entries
        self.cursor = 0
        self.fetched = len(entries)
        self.total = total


class ShardedTreeService:
    """Shard-parallel tree similarity serving, answer-identical to one shard.

    Parameters
    ----------
    trees:
        The corpus.  Trees are shipped to the workers in bracket form at
        startup; afterwards the coordinator only keeps the partition map.
    shards:
        Number of worker processes.  ``1`` delegates every call to a
        single-process :class:`TreeSearchService` — same API, plus its
        result cache.
    filter_name:
        Key into :data:`repro.sharding.worker.FILTER_FACTORIES`
        (``"bibranch"``, ``"bibranchcount"``, ``"histogram"``,
        ``"traversal"``); every shard fits the same filter type.
    partitioner:
        A :class:`~repro.sharding.partition.Partitioner` instance or a
        registry name (``"round-robin"``, ``"size-banded"``).
    max_workers:
        Thread-pool width for :meth:`batch` fan-out (coordinator-side).
    cache_size:
        Result-cache bound — only meaningful for the ``shards=1``
        delegate; the multi-shard path serves uncached.
    prepared_cache_size:
        Per-worker prepared-tree cache bound.
    metrics:
        Optional externally owned :class:`ServiceMetrics`.
    health_interval:
        Seconds between background :meth:`health` polls (a daemon thread
        ships queue depth, in-flight queries, per-stage seconds, RSS and
        uptime from every worker into the metrics registry).  ``0.0``
        (the default) disables the poller; :meth:`health` can always be
        called explicitly.
    candidate_source:
        Forwarded to every worker (and to the ``shards=1`` delegate):
        ``"loop"`` keeps the per-candidate reference path, ``"vectorized"``
        /``"auto"`` run each shard's filter cascade over the matrix planes
        it scatters zero-copy out of its shared-memory columns;
        ``"vptree"``/``"ifi"`` additionally build a shard-local
        :mod:`repro.index` candidate index over the attached store, so
        range scatters prune branch-disjoint rows before the cascade and
        k-NN frontiers stream lazily off the index.  Answers and
        refined-candidate counts are identical across all sources.
    """

    def __init__(
        self,
        trees: Sequence[TreeNode],
        shards: int = 1,
        filter_name: str = "bibranch",
        partitioner: Union[str, Partitioner] = "round-robin",
        max_workers: int = 4,
        cache_size: int = 1024,
        prepared_cache_size: int = 8192,
        metrics: Optional[ServiceMetrics] = None,
        candidate_source: str = "auto",
        health_interval: float = 0.0,
    ) -> None:
        if shards < 1:
            raise InvalidParameterError(f"need >= 1 shards, got {shards}")
        if health_interval < 0:
            raise InvalidParameterError(
                f"health_interval must be >= 0, got {health_interval}"
            )
        if filter_name not in FILTER_FACTORIES:
            raise InvalidParameterError(
                f"unknown filter {filter_name!r} "
                f"(choose from {sorted(FILTER_FACTORIES)})"
            )
        if candidate_source not in CANDIDATE_SOURCES:
            raise InvalidParameterError(
                f"candidate_source must be one of {CANDIDATE_SOURCES}, "
                f"got {candidate_source!r}"
            )
        self.shards = shards
        self.filter_name = filter_name
        self.candidate_source = candidate_source
        self._closed = False
        self._delegate: Optional[TreeSearchService] = None

        self._started_monotonic = time.monotonic()
        factory = FILTER_FACTORIES[filter_name]
        probe = factory()
        trees = list(trees)
        if shards == 1:
            database = TreeDatabase(trees, flt=factory())
            self._delegate = TreeSearchService(
                database,
                max_workers=max_workers,
                cache_size=cache_size,
                prepared_cache_size=prepared_cache_size,
                metrics=metrics,
                candidate_source=candidate_source,
            )
            self.metrics = self._delegate.metrics
            return

        if isinstance(partitioner, str):
            partitioner = make_partitioner(partitioner, shards)
        elif partitioner.shards != shards:
            raise InvalidParameterError(
                f"partitioner is configured for {partitioner.shards} shards, "
                f"service has {shards}"
            )
        self._partitioner = partitioner
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._shard_latency = self.metrics.registry.histogram(
            "repro_shard_latency_seconds",
            "Coordinator-observed per-shard round-trip latency.",
            ("shard", "kind"),
        )
        #: live per-shard load gauges, maintained around every RPC:
        #: queue depth counts callers waiting on the per-worker pipe lock,
        #: in-flight counts exchanges currently on the wire
        self._queue_depth = self.metrics.registry.gauge(
            "repro_shard_queue_depth",
            "Coordinator threads waiting for a worker's pipe lock.",
            ("shard",),
        )
        self._inflight = self.metrics.registry.gauge(
            "repro_shard_inflight_requests",
            "Requests currently on the wire to a worker.",
            ("shard",),
        )
        self._imbalance_warnings = self.metrics.registry.counter(
            "repro_shard_imbalance_warnings_total",
            "health() snapshots that flagged a shard imbalance.",
            ("dimension",),
        )
        #: funnel stage name of the distributed k-NN ordering pass; matches
        #: the single-process ``order:<filter>`` stage for oracle parity.
        #: On an index source with a BDist-dominant filter the workers use
        #: the lazy frontier, so the stage mirrors the single-process
        #: ``index:<kind>`` stage (survivors = frontier rows materialized).
        self._index_knn = (
            candidate_source in INDEX_KINDS and probe.bdist_dominant
        )
        if self._index_knn:
            self._order_stage = f"index:{candidate_source}"
        else:
            self._order_stage = f"order:{probe.name}"

        assignment = ShardAssignment(shards)
        for index, tree in enumerate(trees):
            assignment.append(partitioner.assign(index, tree))
        self._assignment = assignment

        q_levels = probe.required_q_levels() or (getattr(probe, "q", 2),)
        store = FeatureStore(q_levels).fit(trees)

        context = multiprocessing.get_context("fork")
        clients: List[_ShardClient] = []
        planes: List[SharedFeaturePlane] = []
        try:
            for shard in range(shards):
                members = assignment.by_shard[shard]
                plane = SharedFeaturePlane.publish(store, members)
                planes.append(plane)
                parent_conn, child_conn = context.Pipe()
                payload = {
                    "shard": shard,
                    "brackets": [to_bracket(trees[g]) for g in members],
                    "filter": filter_name,
                    "plane": plane.handle,
                    "vocabulary": store.vocabulary,
                    "prepared_cache_size": prepared_cache_size,
                    "candidate_source": candidate_source,
                }
                process = context.Process(
                    target=run_worker,
                    args=(child_conn, payload),
                    daemon=True,
                    name=f"repro-shard-{shard}",
                )
                process.start()
                child_conn.close()
                clients.append(_ShardClient(shard, process, parent_conn))
            self._clients = clients
            for shard in range(shards):
                self._call(shard, ("ping",), "control")
        except BaseException:  # repro-lint: disable=RL008 -- cleanup-and-reraise: started workers and shm segments must not leak when construction fails
            _shutdown_backends(clients, planes)
            raise
        self._planes = planes
        self._finalizer = weakref.finalize(
            self, _shutdown_backends, clients, planes
        )
        self._rwlock = _ReadWriteLock()
        self._mutations = 0
        self._qids = itertools.count()
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="repro-scatter"
        )
        self._batch_pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-shard-batch"
        )
        self._health_stop = threading.Event()
        self._health_thread: Optional[threading.Thread] = None
        if health_interval > 0:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                args=(health_interval,),
                name="repro-shard-health",
                daemon=True,
            )
            self._health_thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop workers, unlink segments, shut down pools (idempotent)."""
        if self._delegate is not None:
            self._delegate.close()
            return
        self._closed = True
        self._health_stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=5)
        self._scatter_pool.shutdown(wait=True)
        self._batch_pool.shutdown(wait=True)
        self._finalizer()  # runs _shutdown_backends at most once

    def __enter__(self) -> "ShardedTreeService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        if self._delegate is not None:
            return len(self._delegate)
        return len(self._assignment)

    @property
    def generation(self) -> int:
        """Mutation counter (parity with the single-process service)."""
        if self._delegate is not None:
            return self._delegate.database.generation
        return self._mutations

    def __repr__(self) -> str:
        if self._delegate is not None:
            return f"ShardedTreeService(1 shard → {self._delegate!r})"
        return (
            f"ShardedTreeService({len(self)} trees, {self.shards} shards, "
            f"filter={self.filter_name!r}, "
            f"partitioner={self._partitioner.name!r})"
        )

    # ------------------------------------------------------------------
    # Worker RPC
    # ------------------------------------------------------------------
    def _call(self, shard: int, message: tuple, kind: str):
        """One request/response exchange with a worker (serialised)."""
        client = self._clients[shard]
        start = time.perf_counter()
        # queue depth counts callers parked on the pipe lock; in-flight
        # counts exchanges on the wire.  Both are gauges so a health
        # snapshot taken from another thread sees live load, not history.
        self._queue_depth.inc(shard=client.label)
        with client.lock:
            self._queue_depth.dec(shard=client.label)
            self._inflight.inc(shard=client.label)
            try:
                # the lock IS the framing protocol: one request and its
                # response must be adjacent on the pipe, so holding
                # client.lock across this round-trip is the point, not an
                # accident.  RL009 flags the shape correctly; we accept
                # the stall domain (one connection) by design.
                # repro-lint: disable=RL009
                client.conn.send(message)
                # repro-lint: disable=RL009
                reply = client.conn.recv()
            except (BrokenPipeError, EOFError, OSError) as error:
                raise ShardError(
                    f"shard {shard} worker is gone "
                    f"({type(error).__name__}: {error})"
                ) from error
            finally:
                self._inflight.dec(shard=client.label)
        self._shard_latency.observe(
            time.perf_counter() - start, shard=client.label, kind=kind
        )
        status = reply[0]
        if status == "error":
            raise ShardError(f"shard {shard} {reply[1]}: {reply[2]}")
        return reply[1]

    def _scatter(self, message: tuple, kind: str) -> List[dict]:
        """Send one message to every shard concurrently; gather in order."""
        futures = [
            self._scatter_pool.submit(self._call, shard, message, kind)
            for shard in range(self.shards)
        ]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range(self, query: TreeNode, threshold: float) -> QueryAnswer:
        """Shard-parallel filter-and-refine range query."""
        return self.execute(QueryRequest("range", query, threshold=threshold))

    def knn(self, query: TreeNode, k: int) -> QueryAnswer:
        """Distributed optimal multi-step k-NN query."""
        return self.execute(QueryRequest("knn", query, k=k))

    def execute(self, request: QueryRequest) -> QueryAnswer:
        """Serve one :class:`QueryRequest` of either kind."""
        if self._delegate is not None:
            return self._delegate.execute(request)
        if self._closed:
            raise RuntimeError("service is closed")
        if request.kind == "range":
            return self._range(request.query, request.threshold)
        return self._knn(request.query, request.k)

    def _range(self, query: TreeNode, threshold: float) -> QueryAnswer:
        if threshold < 0:
            raise QueryError(f"range threshold must be >= 0, got {threshold}")
        bracket = to_bracket(query)
        sink = active_sink()
        want_funnel = sink is not None or tracing.enabled()
        start = time.perf_counter()
        self._rwlock.acquire_read()
        try:
            replies = self._scatter(
                ("range", bracket, threshold, want_funnel), "range"
            )
        finally:
            self._rwlock.release_read()

        matches: List[Tuple[int, float]] = []
        for shard, reply in enumerate(replies):
            members = self._assignment.by_shard[shard]
            for local, distance in reply["matches"]:
                matches.append((members[local], distance))
        matches.sort(key=lambda pair: pair[0])

        stats = SearchStats(
            dataset_size=len(self),
            candidates=sum(reply["candidates"] for reply in replies),
            results=len(matches),
            filter_seconds=sum(reply["filter_seconds"] for reply in replies),
            refine_seconds=sum(reply["refine_seconds"] for reply in replies),
        )
        if want_funnel:
            stats.funnel = self._merge_range_funnels(replies, threshold, stats)
            if sink is not None:
                sink.add(stats.funnel)
        self.metrics.observe_query(
            "range", stats, time.perf_counter() - start, cache_hit=False
        )
        return matches, stats

    def _merge_range_funnels(
        self, replies: List[dict], threshold: float, stats: SearchStats
    ) -> FilterFunnel:
        """Stage-wise sum of the per-shard funnels (stages line up: every
        worker runs the same filter cascade over its partition)."""
        merged: List[FunnelStage] = []
        for reply in replies:
            for position, (name, entered, survivors, seconds) in enumerate(
                reply["stages"]
            ):
                if position == len(merged):
                    merged.append(FunnelStage(name, 0, 0, 0.0))
                stage = merged[position]
                stage.entered += entered
                stage.survivors += survivors
                stage.seconds += seconds
        return FilterFunnel(
            kind="range",
            corpus_size=stats.dataset_size,
            stages=merged,
            refined=stats.candidates,
            results=stats.results,
            refine_seconds=stats.refine_seconds,
            parameter=threshold,
        )

    def _knn(self, query: TreeNode, k: int) -> QueryAnswer:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        total = len(self)
        if k > total:
            raise QueryError(f"k={k} exceeds the dataset size {total}")
        bracket = to_bracket(query)
        sink = active_sink()
        qid = next(self._qids)
        start = time.perf_counter()
        self._rwlock.acquire_read()
        try:
            begins = self._scatter(("knn_begin", qid, bracket), "knn")
            filter_seconds = sum(reply["filter_seconds"] for reply in begins)
            frontiers = [
                _Frontier(reply["chunk"], reply["total"]) for reply in begins
            ]

            # k-way merge keyed (bound, global index): pops reproduce the
            # single-process `sorted(..., key=(bounds[i], i))` order exactly
            frontier_heap: List[Tuple[float, int, int, int]] = []
            for shard in range(self.shards):
                self._push_next(frontier_heap, frontiers, qid, shard)

            heap: List[Tuple[float, int]] = []  # (−distance, −global index)
            refined = 0
            refine_start = time.perf_counter()
            while frontier_heap:
                bound, global_index, shard, local = heapq.heappop(frontier_heap)
                if len(heap) == k and bound > -heap[0][0]:
                    break  # optimal stopping, globally: no shard can improve
                reply = self._call(shard, ("knn_refine", qid, local), "knn")
                distance = reply["distance"]
                refined += 1
                if len(heap) < k:
                    heapq.heappush(heap, (-distance, -global_index))
                elif distance < -heap[0][0]:
                    heapq.heapreplace(heap, (-distance, -global_index))
                self._push_next(frontier_heap, frontiers, qid, shard)
            refine_seconds = time.perf_counter() - refine_start

            for shard in range(self.shards):
                self._call(shard, ("knn_end", qid), "knn")
        finally:
            self._rwlock.release_read()

        stats = SearchStats(
            dataset_size=total,
            candidates=refined,
            results=len(heap),
            filter_seconds=filter_seconds,
            refine_seconds=refine_seconds,
        )
        if sink is not None or tracing.enabled():
            if self._index_knn:
                # lazy frontiers: only the rows the global merge actually
                # pulled were ever materialized/scored on the workers
                ordered = sum(frontier.fetched for frontier in frontiers)
            else:
                ordered = total
            stats.funnel = FilterFunnel(
                kind="knn",
                corpus_size=total,
                stages=[
                    FunnelStage(self._order_stage, total, ordered, filter_seconds)
                ],
                refined=refined,
                results=len(heap),
                refine_seconds=refine_seconds,
                parameter=float(k),
            )
            if sink is not None:
                sink.add(stats.funnel)

        neighbors = sorted(
            ((-neg_index, -neg_distance) for neg_distance, neg_index in heap),
            key=lambda pair: (pair[1], pair[0]),
        )
        self.metrics.observe_query(
            "knn", stats, time.perf_counter() - start, cache_hit=False
        )
        return neighbors, stats

    def _push_next(
        self,
        frontier_heap: List[Tuple[float, int, int, int]],
        frontiers: List[_Frontier],
        qid: int,
        shard: int,
    ) -> None:
        """Advance one shard's frontier cursor onto the merge heap."""
        frontier = frontiers[shard]
        if frontier.cursor >= len(frontier.entries):
            if frontier.fetched >= frontier.total:
                return  # shard exhausted
            reply = self._call(shard, ("knn_more", qid, frontier.fetched), "knn")
            frontier.entries = reply["chunk"]
            frontier.cursor = 0
            frontier.fetched += len(frontier.entries)
            if not frontier.entries:
                return
        bound, local = frontier.entries[frontier.cursor]
        frontier.cursor += 1
        heapq.heappush(
            frontier_heap,
            (bound, self._assignment.by_shard[shard][local], shard, local),
        )

    # ------------------------------------------------------------------
    # Batches
    # ------------------------------------------------------------------
    def batch(self, requests: Sequence[QueryRequest]) -> List[QueryAnswer]:
        """Serve a mixed-kind batch concurrently; answers in input order.

        Runs on a pool distinct from the scatter pool — batch tasks submit
        scatter work, and a shared pool would deadlock once every thread
        held a batch task waiting for a scatter slot.
        """
        if self._delegate is not None:
            return self._delegate.batch(requests)
        self.metrics.observe_batch()
        if not requests:
            return []
        if len(requests) == 1:
            return [self.execute(requests[0])]
        contexts = [contextvars.copy_context() for _ in requests]
        return list(
            self._batch_pool.map(
                lambda pair: pair[0].run(self.execute, pair[1]),
                zip(contexts, requests),
            )
        )

    def batch_range(
        self, queries: Sequence[TreeNode], threshold: float
    ) -> List[QueryAnswer]:
        """Range queries fanned out over the batch pool (input order)."""
        return self.batch(
            [QueryRequest("range", query, threshold=threshold) for query in queries]
        )

    def batch_knn(self, queries: Sequence[TreeNode], k: int) -> List[QueryAnswer]:
        """k-NN queries fanned out over the batch pool (input order)."""
        return self.batch([QueryRequest("knn", query, k=k) for query in queries])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, tree: TreeNode) -> int:
        """Insert one tree; returns its global index.

        Exclusive with queries (writer lock), so a scatter never observes
        a shard mid-insert.  The partitioner decides the owning shard from
        the same ``(global index, tree)`` inputs the initial layout used,
        keeping the placement reproducible.
        """
        if self._delegate is not None:
            return self._delegate.add(tree)
        if self._closed:
            raise RuntimeError("service is closed")
        self._rwlock.acquire_write()
        try:
            global_index = len(self._assignment)
            shard = self._partitioner.assign(global_index, tree)
            self._assignment.append(shard)
            self._call(shard, ("add", to_bracket(tree)), "add")
            self._mutations += 1
        finally:
            self._rwlock.release_write()
        # no cross-process result cache at shards > 1: the invalidation
        # pass is counted for metric parity, with nothing to retain/evict
        self.metrics.observe_invalidation(retained=0, evicted=0)
        return global_index

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def shard_info(self) -> List[Dict[str, object]]:
        """Per-worker counters (tree counts, distance computations)."""
        if self._delegate is not None:
            database = self._delegate.database
            return [
                {
                    "shard": 0,
                    "trees": len(database),
                    "filter": database.filter.name,
                    "distance_computations": database.counter.calls,
                }
            ]
        return list(self._scatter(("info",), "control"))

    def health(self) -> Dict[str, object]:
        """One shard-health snapshot: poll every worker, publish the gauges.

        Returns ``{"shards": [...], "warnings": [...]}`` where each shard
        entry is the worker's health reply (tree count, uptime, peak RSS,
        request counts, per-stage busy seconds, open k-NN cursors,
        distance computations).  Every scalar also lands in the metrics
        registry as a ``repro_shard_*`` gauge labelled by shard, and the
        per-stage seconds as ``repro_shard_stage_seconds{shard,stage}``,
        so ``repro metrics dump`` and the Prometheus exposition see the
        same numbers.  Imbalance warnings (tree placement skew, busy-time
        skew) are returned as strings and counted on
        ``repro_shard_imbalance_warnings_total{dimension}``.
        """
        if self._delegate is not None:
            database = self._delegate.database
            from repro.perf.resources import rss_bytes  # local: perf builds on obs

            # the engine runs a fresh per-query counter (race-free `calls`),
            # so the database counter stays 0 — the metrics counter of
            # refined candidates is the accurate equivalent, and the phase
            # counters give the same per-stage seconds the workers report
            metrics = self.metrics
            queries = metrics._queries.values()
            phase = metrics._phase_seconds.values()
            snapshot: Dict[str, object] = {
                "shard": 0,
                "trees": len(database),
                "uptime_seconds": time.monotonic() - self._started_monotonic,
                "rss_bytes": rss_bytes(),
                "requests": {
                    labels[0]: int(count) for labels, count in queries.items()
                },
                "requests_total": int(sum(queries.values())),
                "stage_seconds": {
                    "filter": sum(
                        seconds
                        for labels, seconds in phase.items()
                        if labels[0] == "filter"
                    ),
                    "refine": sum(
                        seconds
                        for labels, seconds in phase.items()
                        if labels[0] == "refine"
                    ),
                },
                "open_cursors": 0,
                "distance_computations": int(metrics._candidates.value()),
            }
            self._publish_health([snapshot])
            return {"shards": [snapshot], "warnings": []}
        if self._closed:
            raise RuntimeError("service is closed")
        shards = list(self._scatter(("health",), "control"))
        warnings = self._publish_health(shards)
        return {"shards": shards, "warnings": warnings}

    def _publish_health(self, shards: List[Dict[str, object]]) -> List[str]:
        """Set the per-shard gauges and derive imbalance warnings.

        Gauges are fetched get-or-create from the registry (not cached on
        the service) so the ``shards=1`` delegate path — which skips the
        multi-shard constructor — publishes identically.
        """
        registry = self.metrics.registry
        stage_gauge = registry.gauge(
            "repro_shard_stage_seconds",
            "Cumulative busy seconds per pipeline stage on the shard.",
            ("shard", "stage"),
        )
        for snapshot in shards:
            label = str(snapshot["shard"])
            for name, key, help_text in _HEALTH_GAUGES:
                gauge = registry.gauge(name, help_text, ("shard",))
                gauge.set(float(snapshot[key]), shard=label)
            for stage, seconds in snapshot["stage_seconds"].items():
                stage_gauge.set(float(seconds), shard=label, stage=stage)

        warnings: List[str] = []
        if len(shards) < 2:
            return warnings
        imbalance = registry.counter(
            "repro_shard_imbalance_warnings_total",
            "health() snapshots that flagged a shard imbalance.",
            ("dimension",),
        )
        trees = [int(snapshot["trees"]) for snapshot in shards]
        if max(trees) > max(min(trees), 1) * _TREE_IMBALANCE_RATIO:
            warnings.append(
                f"tree placement skew: {min(trees)}..{max(trees)} trees per "
                f"shard exceeds the {_TREE_IMBALANCE_RATIO:g}x balance ratio"
            )
            imbalance.inc(dimension="trees")
        busy = [
            sum(snapshot["stage_seconds"].values()) for snapshot in shards
        ]
        busiest = max(busy)
        if (
            busiest > _LOAD_IMBALANCE_FLOOR_SECONDS
            and busiest > max(min(busy), 1e-9) * _LOAD_IMBALANCE_RATIO
        ):
            warnings.append(
                f"busy-time skew: {min(busy):.3f}s..{busiest:.3f}s per shard "
                f"exceeds the {_LOAD_IMBALANCE_RATIO:g}x balance ratio"
            )
            imbalance.inc(dimension="busy_seconds")
        return warnings

    def _health_loop(self, interval: float) -> None:
        """Daemon poller: one :meth:`health` snapshot per interval."""
        while not self._health_stop.wait(interval):
            try:
                self.health()
            except (RuntimeError, ShardError, OSError):
                break  # racing shutdown — the poller just stops
