"""The declared perf-ledger benchmark suite (``repro bench run``).

Three legs, each measuring one of the system's load-bearing claims over
a pinned synthetic corpus:

* ``serve_throughput`` — a deterministic workload replayed serially
  through :class:`~repro.service.engine.TreeSearchService` (cache off,
  no repeats, so every candidate count is a pure function of corpus and
  seed): throughput, exact latency percentiles, and the per-kind cascade
  cost report (actual seconds, measured speedup vs unfiltered);
* ``vectorized_filters`` — the same range-query stream answered by the
  per-candidate loop and by the matrix-plane cascade; records both
  filter-stage timings, their speedup, and the (identical) refined
  counts;
* ``index_candidates`` — the same stream again through the ``vptree``
  and ``ifi`` candidate indexes; records rows examined per source (the
  sublinearity claim) and the refined counts.

Counts and fractions in the emitted suites are deterministic given
``(corpus, seed)``; times are machine-dependent and gated with the
comparator's noise threshold (:mod:`repro.perf.ledger`).
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Sequence

from repro.filters.binary_branch import BinaryBranchFilter
from repro.obs.funnel import collect_funnels
from repro.search.database import TreeDatabase
from repro.search.range_query import range_query
from repro.service.engine import TreeSearchService
from repro.service.metrics import percentile
from repro.service.workload import WorkloadSpec, generate_workload, replay
from repro.trees.node import TreeNode

__all__ = ["SUITE_NAMES", "run_bench_suite"]

#: the declared suite: every leg a record must contain
SUITE_NAMES = ("serve_throughput", "vectorized_filters", "index_candidates")

#: rows examined per query by the full-scan sources = the corpus size;
#: the index legs report their :attr:`CandidateIndex.last_examined` sums
_INDEX_KINDS = ("vptree", "ifi")


def _select_queries(
    trees: Sequence[TreeNode], count: int, seed: int
) -> List[TreeNode]:
    rng = random.Random(seed)
    return [trees[rng.randrange(len(trees))] for _ in range(count)]


def _serve_throughput(
    trees: Sequence[TreeNode],
    queries: int,
    threshold: float,
    k: int,
    seed: int,
) -> Dict[str, object]:
    spec = WorkloadSpec(
        queries=queries,
        range_fraction=0.5,
        threshold=threshold,
        k=min(k, len(trees)),
        repeat_fraction=0.0,  # no repeats + no cache: counts stay exact
        seed=seed,
    )
    workload = generate_workload(trees, spec)
    database = TreeDatabase(list(trees), flt=BinaryBranchFilter())
    with collect_funnels() as sink:
        with TreeSearchService(database, cache_size=0) as service:
            _, report = replay(service, workload, clients=1)
    leg: Dict[str, object] = {
        "queries": report.queries,
        "wall_seconds": report.wall_seconds,
        "throughput_qps": report.throughput_qps,
        "latency": {
            "p50_seconds": percentile(report.latencies, 50),
            "p95_seconds": percentile(report.latencies, 95),
            "p99_seconds": percentile(report.latencies, 99),
        },
    }
    costs: Dict[str, object] = {}
    for kind, cost in sink.aggregate().cost_report().items():
        costs[kind] = {
            "refined": cost.refined,
            "results": cost.results,
            "filter_seconds": cost.filter_seconds,
            "refine_seconds": cost.refine_seconds,
            "speedup_vs_unfiltered": cost.speedup_vs_unfiltered,
        }
    leg["cost"] = costs
    return leg


def _vectorized_filters(
    trees: Sequence[TreeNode],
    queries: int,
    threshold: float,
    seed: int,
) -> Dict[str, object]:
    stream = _select_queries(trees, queries, seed)
    database = TreeDatabase(list(trees), flt=BinaryBranchFilter())
    flt, counter = database.filter, database.counter
    matrices = database.matrices()

    def _filter_seconds(use_matrices) -> Dict[str, float]:
        filter_seconds = 0.0
        refined = 0
        results = 0
        started = time.perf_counter()
        for query in stream:
            matches, stats = range_query(
                trees, query, threshold, flt, counter, matrices=use_matrices
            )
            filter_seconds += stats.filter_seconds
            refined += stats.candidates
            results += len(matches)
        return {
            "filter_seconds": filter_seconds,
            "total_seconds": time.perf_counter() - started,
            "refined": refined,
            "results": results,
        }

    loop = _filter_seconds(None)
    vectorized = _filter_seconds(matrices)
    speedup = (
        loop["filter_seconds"] / vectorized["filter_seconds"]
        if vectorized["filter_seconds"]
        else 0.0
    )
    return {
        "queries": queries,
        "loop": loop,
        "vectorized": vectorized,
        "filter_speedup": speedup,
    }


def _index_candidates(
    trees: Sequence[TreeNode],
    queries: int,
    threshold: float,
    seed: int,
) -> Dict[str, object]:
    stream = _select_queries(trees, queries, seed)
    database = TreeDatabase(list(trees), flt=BinaryBranchFilter())
    flt, counter = database.filter, database.counter
    leg: Dict[str, object] = {"queries": queries, "corpus_rows": len(trees)}
    for kind in _INDEX_KINDS:
        index = database.candidate_index(kind)
        examined = 0
        refined = 0
        started = time.perf_counter()
        for query in stream:
            _, stats = range_query(
                trees, query, threshold, flt, counter, index=index
            )
            examined += index.last_examined
            refined += stats.candidates
        total = len(trees) * queries
        leg[kind] = {
            "examined_rows": examined,
            "examined_fraction": examined / total if total else 0.0,
            "refined": refined,
            "total_seconds": time.perf_counter() - started,
        }
    return leg


def run_bench_suite(
    trees: Sequence[TreeNode],
    queries: int = 40,
    threshold: float = 1.5,
    k: int = 3,
    seed: int = 0,
) -> Dict[str, Dict[str, object]]:
    """Execute every declared leg; returns the record's ``suites`` dict."""
    if not trees:
        raise ValueError("cannot benchmark an empty corpus")
    if queries < 1:
        raise ValueError(f"need >= 1 queries, got {queries}")
    return {
        "serve_throughput": _serve_throughput(trees, queries, threshold, k, seed),
        "vectorized_filters": _vectorized_filters(trees, queries, threshold, seed),
        "index_candidates": _index_candidates(trees, queries, threshold, seed),
    }
