"""Benchmark harness: filter comparisons over query workloads.

Reproduces the measurement protocol of §5: a dataset, 100 (here:
configurable) queries drawn from it, and for each competing filter the
averaged *percentage of accessed data* plus CPU times, with the sequential
scan as the timing baseline.  One :class:`ComparisonReport` corresponds to
one bar group / line point of the paper's Figures 7–14.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.editdist.zhang_shasha import EditDistanceCounter
from repro.filters.base import LowerBoundFilter
from repro.search.knn import knn_query
from repro.search.range_query import range_query
from repro.search.sequential import sequential_knn_query, sequential_range_query
from repro.search.statistics import SearchStats
from repro.trees.node import TreeNode

__all__ = [
    "FilterReport",
    "ComparisonReport",
    "average_pairwise_distance",
    "select_queries",
    "run_range_comparison",
    "run_knn_comparison",
    "distance_distribution",
]


@dataclass
class FilterReport:
    """Averaged metrics of one filter over a query workload."""

    name: str
    queries: int
    accessed_pct: float
    result_pct: float
    filter_seconds: float
    refine_seconds: float

    @property
    def total_seconds(self) -> float:
        """Average filter + refine CPU time per query."""
        return self.filter_seconds + self.refine_seconds


@dataclass
class ComparisonReport:
    """One workload's results across filters (one figure data point)."""

    dataset_label: str
    mode: str
    dataset_size: int
    filters: List[FilterReport] = field(default_factory=list)
    sequential_seconds: Optional[float] = None

    def filter_report(self, name: str) -> FilterReport:
        """Look up a filter's report by name."""
        for report in self.filters:
            if report.name == name:
                return report
        raise KeyError(f"no filter named {name!r} in report")


def average_pairwise_distance(
    trees: Sequence[TreeNode],
    sample_pairs: int = 200,
    rng: Optional[random.Random] = None,
    counter: Optional[EditDistanceCounter] = None,
) -> float:
    """Estimate the dataset's mean edit distance from sampled pairs.

    The paper sets range-query radii relative to "the average distance among
    the whole dataset"; the full quadratic computation is replaced by
    uniform pair sampling (exact when the dataset has few enough pairs).
    """
    if len(trees) < 2:
        return 0.0
    if rng is None:
        rng = random.Random(1234)
    if counter is None:
        counter = EditDistanceCounter()
    all_pairs = len(trees) * (len(trees) - 1) // 2
    if all_pairs <= sample_pairs:
        pairs = [
            (i, j)
            for i in range(len(trees))
            for j in range(i + 1, len(trees))
        ]
    else:
        pairs = [
            tuple(rng.sample(range(len(trees)), 2)) for _ in range(sample_pairs)
        ]
    total = sum(counter.distance(trees[i], trees[j]) for i, j in pairs)
    return total / len(pairs)


def select_queries(
    trees: Sequence[TreeNode],
    count: int,
    rng: Optional[random.Random] = None,
) -> List[TreeNode]:
    """Randomly select query trees from the dataset (as the paper does)."""
    if rng is None:
        rng = random.Random(4321)
    count = min(count, len(trees))
    return [trees[index] for index in rng.sample(range(len(trees)), count)]


def _average(stats_list: List[SearchStats], name: str) -> FilterReport:
    count = max(1, len(stats_list))
    return FilterReport(
        name=name,
        queries=len(stats_list),
        accessed_pct=sum(s.accessed_percentage for s in stats_list) / count,
        result_pct=sum(s.result_percentage for s in stats_list) / count,
        filter_seconds=sum(s.filter_seconds for s in stats_list) / count,
        refine_seconds=sum(s.refine_seconds for s in stats_list) / count,
    )


def _run_comparison(
    trees: Sequence[TreeNode],
    queries: Sequence[TreeNode],
    filters: Sequence[LowerBoundFilter],
    run_one: Callable[[TreeNode, LowerBoundFilter, EditDistanceCounter], SearchStats],
    run_sequential: Optional[Callable[[TreeNode, EditDistanceCounter], SearchStats]],
    dataset_label: str,
    mode: str,
) -> ComparisonReport:
    report = ComparisonReport(
        dataset_label=dataset_label, mode=mode, dataset_size=len(trees)
    )
    counter = EditDistanceCounter()
    for flt in filters:
        if flt.size != len(trees):
            flt.fit(trees)
        per_query = [run_one(query, flt, counter) for query in queries]
        report.filters.append(_average(per_query, flt.name))
    if run_sequential is not None:
        start = time.perf_counter()
        for query in queries:
            run_sequential(query, counter)
        elapsed = time.perf_counter() - start
        report.sequential_seconds = elapsed / max(1, len(queries))
    return report


def run_range_comparison(
    trees: Sequence[TreeNode],
    queries: Sequence[TreeNode],
    threshold: float,
    filters: Sequence[LowerBoundFilter],
    dataset_label: str = "",
    include_sequential: bool = True,
) -> ComparisonReport:
    """Range-query workload across filters (one Figures 7/9/11/14 point)."""

    def run_one(
        query: TreeNode, flt: LowerBoundFilter, counter: EditDistanceCounter
    ) -> SearchStats:
        _, stats = range_query(trees, query, threshold, flt, counter)
        return stats

    def run_sequential(query: TreeNode, counter: EditDistanceCounter) -> SearchStats:
        _, stats = sequential_range_query(trees, query, threshold, counter)
        return stats

    return _run_comparison(
        trees,
        queries,
        filters,
        run_one,
        run_sequential if include_sequential else None,
        dataset_label,
        mode=f"range(tau={threshold:g})",
    )


def run_knn_comparison(
    trees: Sequence[TreeNode],
    queries: Sequence[TreeNode],
    k: int,
    filters: Sequence[LowerBoundFilter],
    dataset_label: str = "",
    include_sequential: bool = True,
) -> ComparisonReport:
    """k-NN workload across filters (one Figures 8/10/12/13 point)."""

    def run_one(
        query: TreeNode, flt: LowerBoundFilter, counter: EditDistanceCounter
    ) -> SearchStats:
        _, stats = knn_query(trees, query, k, flt, counter)
        return stats

    def run_sequential(query: TreeNode, counter: EditDistanceCounter) -> SearchStats:
        _, stats = sequential_knn_query(trees, query, k, counter)
        return stats

    return _run_comparison(
        trees,
        queries,
        filters,
        run_one,
        run_sequential if include_sequential else None,
        dataset_label,
        mode=f"knn(k={k})",
    )


def distance_distribution(
    trees: Sequence[TreeNode],
    queries: Sequence[TreeNode],
    evaluators: Dict[str, Callable[[TreeNode, TreeNode], float]],
    xs: Sequence[float],
) -> Dict[str, List[float]]:
    """Cumulative data distribution over distance (Figure 15).

    For every named distance function, returns the percentage of database
    objects whose distance to the query is ``≤ x`` for each ``x`` in ``xs``,
    averaged over the queries.  For lower-bound distances the curve lies
    above the exact edit-distance curve; the closer it hugs the edit curve,
    the better the bound.
    """
    result: Dict[str, List[float]] = {}
    denominator = len(trees) * max(1, len(queries))
    for name, evaluate in evaluators.items():
        values = [
            evaluate(query, tree) for query in queries for tree in trees
        ]
        result[name] = [
            100.0 * sum(1 for value in values if value <= x) / denominator
            for x in xs
        ]
    return result
