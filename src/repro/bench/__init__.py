"""Benchmark harness shared by the ``benchmarks/`` drivers."""

from repro.bench.harness import (
    ComparisonReport,
    FilterReport,
    average_pairwise_distance,
    distance_distribution,
    run_knn_comparison,
    run_range_comparison,
    select_queries,
)
from repro.bench.reporting import (
    format_accessed_bars,
    format_comparison,
    format_distribution,
    format_sweep,
)

__all__ = [
    "FilterReport",
    "ComparisonReport",
    "average_pairwise_distance",
    "select_queries",
    "run_range_comparison",
    "run_knn_comparison",
    "distance_distribution",
    "format_comparison",
    "format_accessed_bars",
    "format_sweep",
    "format_distribution",
]
