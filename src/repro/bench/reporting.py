"""Plain-text rendering of benchmark reports.

The benchmark drivers print the same series the paper plots: bars
(% of accessed data per filter, plus result %) and lines (CPU cost of the
filtered search vs. the sequential scan).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import ComparisonReport

__all__ = [
    "format_comparison",
    "format_sweep",
    "format_distribution",
    "format_accessed_bars",
]


def format_comparison(report: ComparisonReport) -> str:
    """Render one workload's report as an aligned text table."""
    lines = [
        f"dataset: {report.dataset_label or '(unnamed)'}  "
        f"size={report.dataset_size}  mode={report.mode}"
    ]
    header = (
        f"  {'filter':<16}{'accessed %':>12}{'result %':>10}"
        f"{'filter s':>10}{'refine s':>10}{'total s':>10}"
    )
    lines.append(header)
    for flt in report.filters:
        lines.append(
            f"  {flt.name:<16}{flt.accessed_pct:>12.2f}{flt.result_pct:>10.2f}"
            f"{flt.filter_seconds:>10.4f}{flt.refine_seconds:>10.4f}"
            f"{flt.total_seconds:>10.4f}"
        )
    if report.sequential_seconds is not None:
        lines.append(
            f"  {'Sequential':<16}{100.0:>12.2f}{'':>10}"
            f"{'':>10}{report.sequential_seconds:>10.4f}"
            f"{report.sequential_seconds:>10.4f}"
        )
    return "\n".join(lines)


def format_sweep(title: str, reports: Sequence[ComparisonReport]) -> str:
    """Render a parameter sweep (one paper figure) as consecutive tables."""
    blocks = [f"== {title} =="]
    blocks.extend(format_comparison(report) for report in reports)
    return "\n\n".join(blocks)


def format_accessed_bars(report: ComparisonReport, width: int = 40) -> str:
    """Render the accessed-data percentages as a horizontal bar chart.

    A terminal-friendly stand-in for the paper's bar plots:

    >>> # doctest-style sketch (values vary):
    >>> # BiBranch   |#####                | 12.3%
    >>> # Histo      |############         | 30.1%
    """
    lines = [f"{report.dataset_label or '(unnamed)'}  {report.mode}"]
    entries = [(f.name, f.accessed_pct) for f in report.filters]
    entries.append(("Result", report.filters[0].result_pct if report.filters else 0))
    for name, value in entries:
        filled = int(round(width * min(value, 100.0) / 100.0))
        bar = "#" * filled + " " * (width - filled)
        lines.append(f"  {name:<14}|{bar}| {value:5.1f}%")
    return "\n".join(lines)


def format_distribution(
    title: str, xs: Sequence[float], curves: Dict[str, List[float]]
) -> str:
    """Render Figure-15-style cumulative distribution curves as a table."""
    lines = [f"== {title} ==", "  distance " + "".join(f"{x:>8g}" for x in xs)]
    for name, values in curves.items():
        lines.append(
            f"  {name:<9}" + "".join(f"{value:>8.1f}" for value in values)
        )
    return "\n".join(lines)
