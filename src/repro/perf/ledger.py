"""The perf ledger: schema-versioned bench records and a noise-aware diff.

A ledger record (``BENCH_<n>.json``) is one machine's measurement of the
declared benchmark suite over a pinned synthetic corpus::

    {
      "format": "repro-bench", "version": 1,
      "label": "BENCH_9", "machine": {...}, "corpus": {...},
      "suites": {"serve_throughput": {...}, "vectorized_filters": {...},
                 "index_candidates": {...}}
    }

:func:`compare_records` walks two records' ``suites`` trees leaf by leaf
and classifies every shared metric by its name and type:

* ``*_seconds`` — wall/CPU time; **lower is better**, gated by the
  relative ``noise`` threshold plus an absolute floor (micro-benchmarks
  jitter; a 2x regression on 50 microseconds is not a signal);
* ``*_qps`` / ``*speedup*`` — rates; **higher is better**, same noise gate;
* integers — deterministic counters (candidate counts, survivors,
  result sizes): any drift beyond ``count_noise`` (default exact) is a
  regression *in either direction*, because on a pinned corpus and seed
  these are behavior, not performance;
* other floats — deterministic ratios (examined fractions); compared
  like counters with a tiny epsilon.

Records measured on different corpora are refused (``ValueError``)
unless explicitly allowed — cross-corpus timings compare nothing.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "LEDGER_FORMAT",
    "LEDGER_VERSION",
    "ComparisonEntry",
    "LedgerComparison",
    "machine_info",
    "make_record",
    "save_record",
    "load_record",
    "compare_records",
    "format_comparison",
]

LEDGER_FORMAT = "repro-bench"
LEDGER_VERSION = 1

#: absolute floor under which time drift is never a regression (seconds)
TIME_FLOOR_SECONDS = 0.002

#: tolerance for "deterministic" float ratios (guards repr/rounding drift)
_RATIO_EPSILON = 1e-9


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
def machine_info() -> Dict[str, object]:
    """Where a record was measured (context, not compared)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count() or 0,
    }


def make_record(
    label: str,
    corpus: Dict[str, object],
    suites: Dict[str, Dict[str, object]],
) -> Dict[str, object]:
    """Assemble one schema-versioned ledger record."""
    return {
        "format": LEDGER_FORMAT,
        "version": LEDGER_VERSION,
        "label": label,
        "machine": machine_info(),
        "corpus": dict(corpus),
        "suites": suites,
    }


def save_record(record: Dict[str, object], path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_record(path: str) -> Dict[str, object]:
    """Read and validate one ledger record (raises ``ValueError`` on junk)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    if not isinstance(record, dict) or record.get("format") != LEDGER_FORMAT:
        raise ValueError(
            f"{path} is not a {LEDGER_FORMAT!r} ledger record "
            f"(format={record.get('format') if isinstance(record, dict) else None!r})"
        )
    if record.get("version") != LEDGER_VERSION:
        raise ValueError(
            f"{path} has ledger version {record.get('version')!r}, "
            f"this build reads version {LEDGER_VERSION}"
        )
    if not isinstance(record.get("suites"), dict):
        raise ValueError(f"{path} has no 'suites' object")
    return record


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _leaves(tree: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Flatten nested suite dicts to ``dotted.path -> numeric leaf``."""
    flat: Dict[str, float] = {}
    for key in sorted(tree):
        value = tree[key]
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            flat.update(_leaves(value, path))
        elif isinstance(value, bool):
            flat[path] = float(value)
        elif isinstance(value, (int, float)):
            flat[path] = value
    return flat


def _classify(name: str, baseline: float, current: float) -> str:
    leaf = name.rsplit(".", 1)[-1]
    if leaf.endswith("_seconds") or leaf == "seconds":
        return "time"
    if leaf.endswith("_qps") or "speedup" in leaf:
        return "rate"
    if isinstance(baseline, int) and isinstance(current, int):
        return "count"
    return "ratio"


@dataclass
class ComparisonEntry:
    """One metric's verdict."""

    metric: str
    kind: str  # time | rate | count | ratio
    baseline: Optional[float]
    current: Optional[float]
    status: str  # ok | regression | improved | new | missing

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "kind": self.kind,
            "baseline": self.baseline,
            "current": self.current,
            "status": self.status,
        }


def _machine_summary(machine: Dict[str, object]) -> str:
    """One-line rendering of a record's ``machine`` provenance block."""
    return (
        f"{machine.get('platform', '?')} "
        f"py{machine.get('python', '?')} "
        f"({machine.get('implementation', '?')}, "
        f"{machine.get('cpu_count', '?')} cpus)"
    )


@dataclass
class LedgerComparison:
    """Every compared metric plus the gate verdict."""

    baseline_label: str
    current_label: str
    noise: float
    count_noise: float
    #: non-empty when the two records were measured on different machines
    machine_caveat: str = ""
    entries: List[ComparisonEntry] = field(default_factory=list)

    @property
    def regressions(self) -> List[ComparisonEntry]:
        return [entry for entry in self.entries if entry.status == "regression"]

    @property
    def improvements(self) -> List[ComparisonEntry]:
        return [entry for entry in self.entries if entry.status == "improved"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline": self.baseline_label,
            "current": self.current_label,
            "noise": self.noise,
            "count_noise": self.count_noise,
            "machine_caveat": self.machine_caveat,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "improvements": len(self.improvements),
            "entries": [entry.to_dict() for entry in self.entries],
        }


def _verdict(
    kind: str,
    baseline: float,
    current: float,
    noise: float,
    count_noise: float,
) -> str:
    if kind == "time":
        if (
            current > baseline * (1.0 + noise)
            and current - baseline > TIME_FLOOR_SECONDS
        ):
            return "regression"
        if (
            baseline > current * (1.0 + noise)
            and baseline - current > TIME_FLOOR_SECONDS
        ):
            return "improved"
        return "ok"
    if kind == "rate":
        if baseline > current * (1.0 + noise):
            return "regression"
        if current > baseline * (1.0 + noise):
            return "improved"
        return "ok"
    # deterministic counters/ratios: drift in either direction is a
    # behavior change on a pinned corpus — regression unless within the
    # (default zero) count tolerance
    scale = max(abs(baseline), abs(current), 1.0)
    tolerance = count_noise * scale + (_RATIO_EPSILON if kind == "ratio" else 0.0)
    if abs(current - baseline) > tolerance:
        return "regression"
    return "ok"


def compare_records(
    baseline: Dict[str, object],
    current: Dict[str, object],
    noise: float = 0.5,
    count_noise: float = 0.0,
    allow_corpus_mismatch: bool = False,
) -> LedgerComparison:
    """Diff two ledger records with noise-aware thresholds.

    ``noise`` is the relative tolerance for time/rate metrics (0.5 =
    flag only changes beyond 1.5x); ``count_noise`` the relative
    tolerance for deterministic counters (0.0 = exact).
    """
    if noise < 0 or count_noise < 0:
        raise ValueError("noise thresholds must be >= 0")
    if not allow_corpus_mismatch and baseline.get("corpus") != current.get("corpus"):
        raise ValueError(
            "ledger corpus parameters differ "
            f"({baseline.get('corpus')!r} vs {current.get('corpus')!r}); "
            "timings over different corpora are not comparable "
            "(pass allow_corpus_mismatch/--allow-corpus-mismatch to override)"
        )
    baseline_machine = baseline.get("machine") or {}
    current_machine = current.get("machine") or {}
    caveat = ""
    if (
        isinstance(baseline_machine, dict)
        and isinstance(current_machine, dict)
        and baseline_machine != current_machine
    ):
        # cross-machine timings still gate counts/ratios exactly, but the
        # time/rate verdicts deserve a visible asterisk
        caveat = (
            f"baseline on {_machine_summary(baseline_machine)}, "
            f"current on {_machine_summary(current_machine)}"
        )
    comparison = LedgerComparison(
        baseline_label=str(baseline.get("label", "?")),
        current_label=str(current.get("label", "?")),
        noise=noise,
        count_noise=count_noise,
        machine_caveat=caveat,
    )
    base_leaves = _leaves(baseline["suites"])
    current_leaves = _leaves(current["suites"])
    for metric in sorted(set(base_leaves) | set(current_leaves)):
        base_value = base_leaves.get(metric)
        current_value = current_leaves.get(metric)
        if base_value is None:
            comparison.entries.append(
                ComparisonEntry(metric, "new", None, current_value, "new")
            )
            continue
        if current_value is None:
            # a vanished metric means a suite leg silently stopped running
            comparison.entries.append(
                ComparisonEntry(metric, "missing", base_value, None, "regression")
            )
            continue
        kind = _classify(metric, base_value, current_value)
        status = _verdict(kind, base_value, current_value, noise, count_noise)
        comparison.entries.append(
            ComparisonEntry(metric, kind, base_value, current_value, status)
        )
    return comparison


def format_comparison(comparison: LedgerComparison, verbose: bool = False) -> str:
    """Human-readable diff; regressions always shown, the rest on demand."""

    def _fmt(value: Optional[float]) -> str:
        if value is None:
            return "-"
        if isinstance(value, float) and not value.is_integer():
            return f"{value:.6g}"
        return f"{value:g}"

    lines = [
        f"perf ledger: {comparison.current_label} vs "
        f"{comparison.baseline_label} "
        f"(noise {comparison.noise:g}, count noise {comparison.count_noise:g})"
    ]
    if comparison.machine_caveat:
        lines.append(f"  NOTE: machines differ — {comparison.machine_caveat}")
    shown: List[Tuple[str, ComparisonEntry]] = []
    for entry in comparison.entries:
        if entry.status == "regression":
            shown.append(("REGRESSION", entry))
        elif verbose or entry.status == "improved":
            shown.append((entry.status.upper(), entry))
    for tag, entry in shown:
        lines.append(
            f"  {tag:<10} {entry.metric}  "
            f"{_fmt(entry.baseline)} -> {_fmt(entry.current)} [{entry.kind}]"
        )
    lines.append(
        f"{len(comparison.entries)} metrics compared, "
        f"{len(comparison.regressions)} regression(s), "
        f"{len(comparison.improvements)} improvement(s)"
    )
    return "\n".join(lines)
