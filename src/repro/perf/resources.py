"""Process resource probes: tiny, dependency-free, never raising.

Used by the shard health telemetry (each worker reports its own RSS over
the control pipe) and by the perf ledger's machine stanza.  On platforms
without :mod:`resource` (Windows) the probes degrade to 0 rather than
fail — health telemetry must never take a worker down.
"""

from __future__ import annotations

import sys

__all__ = ["rss_bytes"]

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None


def rss_bytes() -> int:
    """Peak resident set size of the calling process, in bytes (0 unknown).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes so the ``repro_shard_rss_bytes`` gauge means one thing.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024
