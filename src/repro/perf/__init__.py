"""repro.perf — performance intelligence: cost accounting and the ledger.

The paper's efficiency claim is a cost argument: cheap lower-bound
filters are worth running exactly when the refinement seconds they save
exceed the seconds they cost.  This package makes that argument
continuously measurable:

* :mod:`repro.perf.costs` — joins
  :class:`~repro.obs.funnel.FunnelAggregate` survivor counts with the
  measured per-stage seconds into per-candidate unit costs, per-stage
  net benefit, and a predicted-vs-actual cascade cost report
  (``repro search --cost-report``, ``repro serve-bench --cost-report``);
* :mod:`repro.perf.ledger` — schema-versioned ``BENCH_<n>.json`` records
  (machine, corpus parameters, suite measurements) plus a noise-aware
  comparator that gates CI on regressions (``repro bench run`` /
  ``repro bench compare``);
* :mod:`repro.perf.resources` — tiny process-resource probes (RSS) used
  by the shard health telemetry and the ledger's machine stanza.

See ``docs/PERF.md``.
"""

from repro.perf.costs import (
    CascadeCostReport,
    StageCost,
    cost_reports,
    format_cost_reports,
)
from repro.perf.ledger import (
    LEDGER_FORMAT,
    LEDGER_VERSION,
    ComparisonEntry,
    LedgerComparison,
    compare_records,
    format_comparison,
    load_record,
    machine_info,
    make_record,
    save_record,
)
from repro.perf.resources import rss_bytes

__all__ = [
    "StageCost",
    "CascadeCostReport",
    "cost_reports",
    "format_cost_reports",
    "LEDGER_FORMAT",
    "LEDGER_VERSION",
    "ComparisonEntry",
    "LedgerComparison",
    "machine_info",
    "make_record",
    "save_record",
    "load_record",
    "compare_records",
    "format_comparison",
    "rss_bytes",
]
