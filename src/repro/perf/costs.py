"""Per-stage cost accounting: the paper's cost model, measured.

A filter cascade is worth running when, per stage,

    refuted × refine_unit_cost  >  stage_seconds

— the refinements the stage *saved* cost more than the stage itself.
This module joins a :class:`~repro.obs.funnel.FunnelAggregate`'s survivor
counts with the measured per-stage seconds into exactly that ledger:

* :class:`StageCost` — one stage's unit cost (seconds per candidate
  entering), selectivity, and net benefit in seconds (refinements saved,
  priced at the measured refine unit cost, minus the stage's own cost);
* :class:`CascadeCostReport` — one query kind's whole cascade: actual
  seconds (filters + refine), the linear-model *predicted* seconds
  (Σ entered×unit + refined×refine_unit — a self-consistency check), and
  the predicted cost of refining the entire corpus unfiltered, whose
  ratio to the actual seconds is the cascade's measured speedup.

Everything guards empty inputs (zero queries, empty corpus, stages with
no entrants) by reporting 0.0 — cost accounting must never crash the
query path it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Protocol


class _SupportsToDict(Protocol):
    """What :func:`cost_reports` needs from a funnel aggregate.

    A structural type instead of the concrete
    :class:`~repro.obs.funnel.FunnelAggregate` keeps this module
    importable (and type-checkable) without the obs package.
    """

    def to_dict(self) -> Dict[str, Any]: ...

__all__ = [
    "StageCost",
    "CascadeCostReport",
    "cost_reports",
    "format_cost_reports",
]


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


@dataclass
class StageCost:
    """One filter stage's measured economics across an aggregate."""

    name: str
    queries: int
    entered: int
    survivors: int
    seconds: float
    #: measured refine seconds per refined candidate, shared by the cascade
    refine_unit_cost: float

    @property
    def refuted(self) -> int:
        return self.entered - self.survivors

    @property
    def selectivity(self) -> float:
        return _ratio(self.survivors, self.entered)

    @property
    def unit_cost(self) -> float:
        """Seconds this stage spends per candidate entering it."""
        return _ratio(self.seconds, self.entered)

    @property
    def saved_refine_seconds(self) -> float:
        """Refine seconds avoided: refuted candidates × refine unit cost."""
        return self.refuted * self.refine_unit_cost

    @property
    def net_benefit_seconds(self) -> float:
        """Seconds saved minus seconds spent (negative = stage not paying)."""
        return self.saved_refine_seconds - self.seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "queries": self.queries,
            "entered": self.entered,
            "survivors": self.survivors,
            "refuted": self.refuted,
            "selectivity": self.selectivity,
            "seconds": self.seconds,
            "unit_cost_seconds": self.unit_cost,
            "saved_refine_seconds": self.saved_refine_seconds,
            "net_benefit_seconds": self.net_benefit_seconds,
        }


@dataclass
class CascadeCostReport:
    """One query kind's cascade, predicted vs actual."""

    kind: str
    queries: int
    corpus_considered: int
    refined: int
    results: int
    refine_seconds: float
    stages: List[StageCost] = field(default_factory=list)

    @property
    def filter_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    @property
    def actual_seconds(self) -> float:
        """Measured cascade cost: every filter stage plus the refinement."""
        return self.filter_seconds + self.refine_seconds

    @property
    def refine_unit_cost(self) -> float:
        """Measured seconds per refined candidate (0.0 with no refinement)."""
        return _ratio(self.refine_seconds, self.refined)

    @property
    def predicted_seconds(self) -> float:
        """Linear cost model: Σ entered×unit_cost + refined×refine_unit.

        By construction this reproduces the actual seconds when every
        stage's cost is linear in its entrants — deviations flag stages
        whose per-candidate cost assumption does not hold.
        """
        return (
            sum(stage.entered * stage.unit_cost for stage in self.stages)
            + self.refined * self.refine_unit_cost
        )

    @property
    def predicted_unfiltered_seconds(self) -> float:
        """Cost of refining the whole corpus at the measured unit cost."""
        return self.corpus_considered * self.refine_unit_cost

    @property
    def speedup_vs_unfiltered(self) -> float:
        """How many times cheaper the cascade is than refining everything."""
        return _ratio(self.predicted_unfiltered_seconds, self.actual_seconds)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "queries": self.queries,
            "corpus_considered": self.corpus_considered,
            "refined": self.refined,
            "results": self.results,
            "filter_seconds": self.filter_seconds,
            "refine_seconds": self.refine_seconds,
            "actual_seconds": self.actual_seconds,
            "refine_unit_cost_seconds": self.refine_unit_cost,
            "predicted_seconds": self.predicted_seconds,
            "predicted_unfiltered_seconds": self.predicted_unfiltered_seconds,
            "speedup_vs_unfiltered": self.speedup_vs_unfiltered,
            "stages": [stage.to_dict() for stage in self.stages],
        }


def cost_reports(aggregate: _SupportsToDict) -> Dict[str, CascadeCostReport]:
    """Build one :class:`CascadeCostReport` per query kind.

    ``aggregate`` is a :class:`~repro.obs.funnel.FunnelAggregate` (typed
    structurally: only its :meth:`to_dict` schema is consumed, which
    keeps this importable without the obs package at type-check time).
    """
    reports: Dict[str, CascadeCostReport] = {}
    summary = aggregate.to_dict()
    for kind, entry in summary["kinds"].items():
        refine_unit = _ratio(entry["refine_seconds"], entry["refined"])
        report = CascadeCostReport(
            kind=kind,
            queries=entry["queries"],
            corpus_considered=entry["corpus_considered"],
            refined=entry["refined"],
            results=entry["results"],
            refine_seconds=entry["refine_seconds"],
        )
        for cell in entry["stages"]:
            report.stages.append(
                StageCost(
                    name=cell["name"],
                    queries=cell["queries"],
                    entered=cell["entered"],
                    survivors=cell["survivors"],
                    seconds=cell["seconds"],
                    refine_unit_cost=refine_unit,
                )
            )
        reports[kind] = report
    return reports


def format_cost_reports(reports: Dict[str, CascadeCostReport]) -> str:
    """Human-readable cost ledger, one block per query kind."""
    if not reports:
        return "(no funnels collected - nothing to cost)"
    lines: List[str] = []
    for kind in sorted(reports):
        report = reports[kind]
        lines.append(
            f"{kind}: {report.queries} queries over "
            f"{report.corpus_considered} candidates"
        )
        for stage in report.stages:
            lines.append(
                f"  stage {stage.name:<18} "
                f"unit {stage.unit_cost * 1e6:9.3f} us  "
                f"refuted {stage.refuted:>8}  "
                f"saved {stage.saved_refine_seconds:8.4f}s  "
                f"net {stage.net_benefit_seconds:+8.4f}s"
            )
        lines.append(
            f"  refine {'':<17} "
            f"unit {report.refine_unit_cost * 1e6:9.3f} us  "
            f"refined {report.refined:>8}  "
            f"spent {report.refine_seconds:8.4f}s"
        )
        lines.append(
            f"  cascade actual {report.actual_seconds:.4f}s · "
            f"predicted {report.predicted_seconds:.4f}s · "
            f"unfiltered {report.predicted_unfiltered_seconds:.4f}s · "
            f"speedup {report.speedup_vs_unfiltered:.1f}x"
        )
    return "\n".join(lines)
