"""CI guard: every lint rule still fires on the known-bad fixtures.

A rule whose detection silently breaks would leave `repro lint` green
forever; this script runs the full rule set over
``tests/analysis/fixtures`` and exits non-zero unless every rule
(RL001–RL012) produces at least one finding.  The per-rule *exactness*
checks live in ``tests/analysis/test_rules.py``; this is the cheap
end-to-end canary the CI lint job runs next to the real lint pass.
"""

import sys
from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "analysis" / "fixtures"


def main() -> int:
    run = analyze_paths([FIXTURES], root=FIXTURES)
    fired = {finding.rule for finding in run.findings}
    expected = {f"RL{n:03d}" for n in range(1, 13)}
    missing = sorted(expected - fired)
    if missing:
        print(f"rules produced no fixture findings: {', '.join(missing)}")
        return 1
    print(f"all {len(expected)} rules reproduced on {FIXTURES.relative_to(REPO_ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
