"""Legacy setup shim (lets pip perform editable installs offline)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Binary branch distance and filter-and-refine similarity search "
        "for tree-structured data (SIGMOD 2005 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.9",
)
