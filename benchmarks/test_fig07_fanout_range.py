"""Figure 7: sensitivity to fanout — range queries.

Datasets ``N{f,0.5}N{50,2}L8D0.05`` for fanout means f ∈ {2, 4, 6, 8};
range = 1/5 of the average dataset distance.  The paper reports BiBranch
accessing at most 3.35% of the data the histogram filtration accesses, with
the worst case for both at fanout 2 (tall thin trees, larger structural
distances).
"""

from repro.datasets import SyntheticSpec

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sweep_synthetic,
)
from repro.bench import format_sweep

FANOUTS = [2, 4, 6, 8]


def _specs():
    return {
        f"N{{{fanout},0.5}}N{{50,2}}L8D0.05": SyntheticSpec(
            fanout_mean=fanout, fanout_stddev=0.5,
            size_mean=50, size_stddev=2, label_count=8, decay=0.05,
        )
        for fanout in FANOUTS
    }


def test_fig07_fanout_range(benchmark):
    scale = current_scale()

    def run():
        return sweep_synthetic(
            "fig07", _specs(), "range", scale.dataset_size, scale.query_count
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig07_fanout_range", format_sweep(
        "Figure 7: fanout sweep, range queries", reports
    ))
    for report in reports:
        # the paper's claim: BiBranch filtration dominates histogram
        # filtration for range queries on every fanout setting
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
        # and the filtered search is far cheaper than the sequential scan
        if report.sequential_seconds is not None:
            bibranch = report.filter_report("BiBranch")
            assert bibranch.total_seconds < report.sequential_seconds
