"""Candidate-generation work across the four sources.

Not a paper figure — a harness entry for the sublinear candidate
indexes (`repro.index`).  The same selective range-query stream is
answered four ways over the same fitted filter:

* **loop** / **vectorized**: both consult every corpus row per query
  (one in Python, one through the matrix planes);
* **vptree**: the BDist metric tree prunes whole subtrees via the
  triangle inequality;
* **ifi**: the extended inverted file touches only the posting lists of
  the query's own branches plus a norm-sorted prefix.

The assertions encode the subsystem's contract: answers and refined
candidates bit-identical to the loop reference, and — the sublinearity
headline — both index sources examine **< 50 % of the corpus rows** per
query at selective thresholds on the 5000-tree corpus.  The
`search:index-completeness` oracle checks exactness across far more
configurations; this driver pins the *work saved*.
"""

import time

from benchmarks.figure_common import save_report
from repro.datasets import SyntheticSpec, generate_dataset
from repro.filters.binary_branch import BinaryBranchFilter
from repro.search.database import TreeDatabase
from repro.search.range_query import range_query

# a wide label alphabet is the regime the inverted file is built for:
# posting lists stay short because few rows share the query's branches
SPEC = SyntheticSpec(
    fanout_mean=4, fanout_stddev=0.5, size_mean=20, size_stddev=2,
    label_count=48, decay=0.05,
)

SIZES = (1500, 5000)
THRESHOLD = 1.0
QUERY_COUNT = 8
MAX_EXAMINED_FRACTION = 0.5


def _run_stream(trees, queries, flt, counter, *, matrices=None, index=None):
    answers = []
    candidates = 0
    examined = 0
    started = time.perf_counter()
    for query in queries:
        matches, stats = range_query(
            trees, query, THRESHOLD, flt, counter,
            matrices=matrices, index=index,
        )
        answers.append(matches)
        candidates += stats.candidates
        examined += index.last_examined if index is not None else len(trees)
    return answers, candidates, examined, time.perf_counter() - started


def test_index_candidate_pruning(benchmark):
    lines = [
        "Candidate-generation work per source (range queries, "
        f"threshold {THRESHOLD:g}, {QUERY_COUNT} queries)",
        "",
        f"{'trees':>6}  {'source':<10}  {'examined/query':>14}  "
        f"{'fraction':>8}  {'refined':>7}  {'seconds':>8}",
    ]
    fractions = {}
    rerun = None
    for size in SIZES:
        trees = generate_dataset(SPEC, count=size, seed=31)
        queries = trees[:QUERY_COUNT]
        database = TreeDatabase(list(trees), flt=BinaryBranchFilter())
        flt, counter = database.filter, database.counter
        matrices = database.matrices()
        assert matrices is not None

        streams = {
            "loop": {},
            "vectorized": {"matrices": matrices},
            "vptree": {"index": database.candidate_index("vptree")},
            "ifi": {"index": database.candidate_index("ifi")},
        }
        reference = None
        for source, kwargs in streams.items():
            answers, candidates, examined, seconds = _run_stream(
                trees, queries, flt, counter, **kwargs
            )
            if reference is None:
                reference = (answers, candidates)
            # exactness first: pruning must never change the answer
            assert (answers, candidates) == reference
            fraction = examined / (size * QUERY_COUNT)
            fractions[(size, source)] = fraction
            lines.append(
                f"{size:>6}  {source:<10}  {examined / QUERY_COUNT:>14.1f}  "
                f"{fraction:>8.1%}  {candidates:>7}  {seconds:>8.3f}"
            )
            if size == SIZES[-1] and source == "vptree":
                rerun = (trees, queries, kwargs)

    save_report("index_candidates", "\n".join(lines))

    for kind in ("vptree", "ifi"):
        fraction = fractions[(SIZES[-1], kind)]
        assert fraction < MAX_EXAMINED_FRACTION, (
            f"{kind} examined {fraction:.1%} of the {SIZES[-1]}-tree corpus "
            f"(sublinearity claim needs < {MAX_EXAMINED_FRACTION:.0%})"
        )

    trees, queries, kwargs = rerun
    benchmark.pedantic(
        lambda: _run_stream(trees, queries, flt, counter, **kwargs),
        rounds=3, iterations=1,
    )
