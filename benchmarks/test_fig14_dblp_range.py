"""Figure 14: range queries on the DBLP-like dataset, τ ∈ {1 … 10}.

The paper's findings: below the average distance (~5) BiBranch clearly
out-filters the histograms; as τ approaches 10 the result set covers nearly
the whole dataset and the two methods converge — on shallow, small trees the
small binary branch universe blurs distinctions.
"""

import random

from repro.bench import format_sweep, run_range_comparison, select_queries
from repro.datasets import generate_dblp_dataset

from repro.filters import BinaryBranchFilter, space_parity_histogram_filter

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sequential_enabled,
)

RANGES = [1, 2, 3, 4, 5, 7, 10]


def test_fig14_dblp_range(benchmark):
    scale = current_scale()
    trees = generate_dblp_dataset(scale.dblp_dataset_size, seed=42)
    queries = select_queries(trees, scale.dblp_query_count, rng=random.Random(44))
    filters = [BinaryBranchFilter(), space_parity_histogram_filter(trees)]

    def run():
        return [
            run_range_comparison(
                trees, queries, tau, filters,
                dataset_label=f"DBLP-like tau={tau}",
                include_sequential=sequential_enabled(),
            )
            for tau in RANGES
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig14_dblp_range", format_sweep(
        "Figure 14: range queries on DBLP-like data", reports
    ))
    # below the clustering radius BiBranch clearly out-filters the
    # histograms (the paper's "range below the average distance" regime);
    # at very large radii the result is nearly the whole dataset and the
    # branch bound hits its (|T1|+|T2|)/5 ceiling first, so the methods
    # converge (both -> 100%)
    for report in reports[:3]:
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
    small, large = reports[0], reports[-1]
    assert accessed(large, "BiBranch") >= accessed(small, "BiBranch")
    assert accessed(large, "Histo") >= 95.0  # converged
