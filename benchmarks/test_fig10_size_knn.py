"""Figure 10: sensitivity to tree size — k-NN queries.

Same datasets as Figure 9; k = 0.25% of the dataset.  The paper reports the
same trends as for range queries: histogram filtration accesses much more
data as trees grow while BiBranch stays near the result size.
"""

from repro.datasets import SyntheticSpec

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sweep_synthetic,
)
from repro.bench import format_sweep

SIZES = [25, 50, 75, 125]


def _specs():
    return {
        f"N{{4,0.5}}N{{{size},2}}L8D0.05": SyntheticSpec(
            fanout_mean=4, fanout_stddev=0.5,
            size_mean=size, size_stddev=2, label_count=8, decay=0.05,
        )
        for size in SIZES
    }


def test_fig10_size_knn(benchmark):
    scale = current_scale()

    def run():
        return sweep_synthetic(
            "fig10", _specs(), "knn",
            scale.large_tree_dataset_size, scale.query_count,
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig10_size_knn", format_sweep(
        "Figure 10: tree size sweep, k-NN queries", reports
    ))
    for report in reports:
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
        if report.sequential_seconds is not None:
            bibranch = report.filter_report("BiBranch")
            assert bibranch.total_seconds < report.sequential_seconds
