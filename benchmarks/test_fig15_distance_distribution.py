"""Figure 15: data distribution over distance on DBLP-like records.

For each distance x ∈ 1..12 the figure plots the percentage of (query,
data) pairs whose distance is ≤ x, under five distance estimates: the exact
edit distance, the BiBranch lower bound at levels 2, 3 and 4, and the
histogram lower bound.  A tighter lower bound hugs the edit-distance curve
from above; the paper finds BiBranch(2) strictly better than the histogram
bound, while the 3- and 4-level bounds only help below distance ≈ 3 on
shallow DBLP trees (their ``4(q−1)+1`` denominators grow with q).
"""

import random

from repro.bench import distance_distribution, format_distribution, select_queries
from repro.datasets import generate_dblp_dataset
from repro.editdist import EditDistanceCounter
from repro.filters import BinaryBranchFilter, space_parity_histogram_filter

from benchmarks.figure_common import current_scale, save_report

XS = list(range(1, 13))


def test_fig15_distance_distribution(benchmark):
    scale = current_scale()
    # quadratic in dataset size x queries: keep the corpus moderate
    trees = generate_dblp_dataset(min(300, scale.dblp_dataset_size), seed=42)
    queries = select_queries(trees, max(3, scale.dblp_query_count // 2),
                             rng=random.Random(45))

    counter = EditDistanceCounter()
    evaluators = {"Edit": counter.distance}
    for q in (2, 3, 4):
        flt = BinaryBranchFilter(q=q).fit(trees)
        signatures = {id(t): s for t, s in zip(trees, flt._signatures)}

        def bound(query, tree, flt=flt, signatures=signatures):
            return flt.bound(flt.signature(query), signatures[id(tree)])

        evaluators[f"BiB({q})"] = bound
    histogram = space_parity_histogram_filter(trees).fit(trees)
    histogram_signatures = {
        id(t): s for t, s in zip(trees, histogram._signatures)
    }
    evaluators["Histo"] = lambda query, tree: histogram.bound(
        histogram.signature(query), histogram_signatures[id(tree)]
    )

    def run():
        return distance_distribution(trees, queries, evaluators, XS)

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig15_distance_distribution", format_distribution(
        "Figure 15: cumulative data distribution vs distance (DBLP-like)",
        XS,
        curves,
    ))

    edit = curves["Edit"]
    for name in ("BiB(2)", "BiB(3)", "BiB(4)", "Histo"):
        # every lower-bound curve lies above the exact distance curve
        assert all(lb >= ed - 1e-9 for lb, ed in zip(curves[name], edit))
    # in the small-distance regime that matters for filtering clustered
    # DBLP data, BiBranch(2) hugs the edit curve at least as closely as the
    # histogram bound; at larger distances all bounds saturate on shallow
    # ~12-node records (the paper's §5.3 observation for the multi-level
    # branches; the 2-level bound's ceiling is (|T1|+|T2|)/5 ≈ 5 here)
    small = range(2)  # x = 1, 2
    for x in small:
        assert curves["BiB(2)"][x] <= curves["Histo"][x] + 1e-9
    # and the multi-level distances only help below distance ~3 (paper §5.3)
    assert curves["BiB(3)"][5] >= curves["Histo"][5] - 1e-9
