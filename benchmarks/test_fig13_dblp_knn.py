"""Figure 13: k-NN queries on the DBLP-like dataset, k ∈ {5 … 20}.

The paper samples 2000 DBLP records (avg. 10.15 nodes, avg. distance 5.03)
and varies k from 5 to 20: BiBranch accesses one-to-three-times less data
than histogram filtration, and because DBLP clusters tightly the filtered
search needs only ~1/6 of the sequential CPU time.
"""

import random

from repro.bench import (
    format_sweep,
    run_knn_comparison,
    select_queries,
)
from repro.datasets import generate_dblp_dataset

from repro.filters import BinaryBranchFilter, space_parity_histogram_filter

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sequential_enabled,
)

K_VALUES = [5, 7, 10, 12, 15, 17, 20]


def test_fig13_dblp_knn(benchmark):
    scale = current_scale()
    trees = generate_dblp_dataset(scale.dblp_dataset_size, seed=42)
    queries = select_queries(trees, scale.dblp_query_count, rng=random.Random(43))
    # the histogram comparator is folded to the paper's space budget (§5)
    filters = [BinaryBranchFilter(), space_parity_histogram_filter(trees)]

    def run():
        return [
            run_knn_comparison(
                trees, queries, k, filters,
                dataset_label=f"DBLP-like k={k}",
                include_sequential=sequential_enabled(),
            )
            for k in K_VALUES
            if k <= len(trees)
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig13_dblp_knn", format_sweep(
        "Figure 13: k-NN on DBLP-like data", reports
    ))
    # the paper's headline for Figure 13: BiBranch accesses less data than
    # histogram filtration; at the largest k both bounds saturate on these
    # ~12-node records, so a hair of tolerance is allowed there
    for report in reports[:4]:
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
    for report in reports[4:]:
        assert accessed(report, "BiBranch") <= 1.05 * accessed(report, "Histo")
    # ... and needs a fraction of the sequential CPU time while the answer
    # set is tight (at large k on ~12-node trees the pure-Python positional
    # bound costs nearly as much per pair as the exact distance, so the
    # timing claim is asserted for the small-k regime; see EXPERIMENTS.md)
    for report in reports[:3]:
        if report.sequential_seconds is not None:
            bibranch = report.filter_report("BiBranch")
            assert bibranch.total_seconds < report.sequential_seconds
