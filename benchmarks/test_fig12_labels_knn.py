"""Figure 12: sensitivity to the number of labels — k-NN queries.

Same datasets as Figure 11; k = 0.25% of the dataset.
"""

from repro.datasets import SyntheticSpec

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sweep_synthetic,
)
from repro.bench import format_sweep

LABELS = [8, 16, 32, 64]


def _specs():
    return {
        f"N{{4,0.5}}N{{50,2}}L{count}D0.05": SyntheticSpec(
            fanout_mean=4, fanout_stddev=0.5,
            size_mean=50, size_stddev=2, label_count=count, decay=0.05,
        )
        for count in LABELS
    }


def test_fig12_labels_knn(benchmark):
    scale = current_scale()

    def run():
        return sweep_synthetic(
            "fig12", _specs(), "knn", scale.dataset_size, scale.query_count
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig12_labels_knn", format_sweep(
        "Figure 12: label count sweep, k-NN queries", reports
    ))
    for report in reports:
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
        if report.sequential_seconds is not None:
            bibranch = report.filter_report("BiBranch")
            assert bibranch.total_seconds < report.sequential_seconds
