"""Feature plane: shared one-pass fit vs per-filter fits; packed vs dict L1.

Two claims the shared feature plane makes:

* fitting several filters from one :class:`FeatureStore` (one traversal per
  tree) is faster than fitting each filter standalone (one traversal per
  tree *per filter*);
* the packed integer-array vectors compute BDist-style bounds at least as
  fast as the dict-keyed :class:`~repro.core.vectors.BranchVector`.
"""

import random
import time

from repro.core import branch_vector
from repro.datasets import SyntheticSpec, generate_dataset
from repro.features import FeatureStore
from repro.filters import BinaryBranchFilter, BranchCountFilter, HistogramFilter

from benchmarks.figure_common import save_report


def test_feature_store(benchmark):
    spec = SyntheticSpec(fanout_mean=4, fanout_stddev=0.5,
                         size_mean=50, size_stddev=2, label_count=8, decay=0.05)
    trees = generate_dataset(spec, count=80, seed=7)
    rng = random.Random(11)
    pairs = [tuple(rng.sample(range(len(trees)), 2)) for _ in range(4000)]
    timings = {}

    def measure():
        # -- fitting: three filters standalone vs from one shared store
        start = time.perf_counter()
        for flt in (BinaryBranchFilter(), BranchCountFilter(), HistogramFilter()):
            flt.fit(trees)
        timings["separate"] = time.perf_counter() - start

        start = time.perf_counter()
        store = FeatureStore((2,)).fit(trees)
        for flt in (BinaryBranchFilter(), BranchCountFilter(), HistogramFilter()):
            flt.fit_from_store(store)
        timings["shared"] = time.perf_counter() - start

        # -- bound throughput: packed arrays vs dict-keyed vectors
        packed = store.packed_vectors()
        dicts = [branch_vector(tree) for tree in trees]

        start = time.perf_counter()
        checksum_packed = 0
        for i, j in pairs:
            checksum_packed += packed[i].l1_distance(packed[j])
        timings["packed"] = time.perf_counter() - start

        start = time.perf_counter()
        checksum_dict = 0
        for i, j in pairs:
            checksum_dict += dicts[i].l1_distance(dicts[j])
        timings["dict"] = time.perf_counter() - start
        assert checksum_packed == checksum_dict  # value-identical
        return timings

    benchmark.pedantic(measure, rounds=3, iterations=1)

    rows = [
        "== Feature plane: fitting BiBranch + BiBranchCount + Histogram "
        f"({len(trees)} trees) ==",
        f"  separate fits     {timings['separate'] * 1000:>10.3f} ms",
        f"  shared one-pass   {timings['shared'] * 1000:>10.3f} ms",
        f"  speedup           {timings['separate'] / timings['shared']:>10.2f}x",
        "",
        f"== Packed vs dict L1 over {len(pairs)} vector pairs ==",
        f"  dict BranchVector {timings['dict'] / len(pairs) * 1e6:>10.3f} us/pair",
        f"  packed arrays     {timings['packed'] / len(pairs) * 1e6:>10.3f} us/pair",
        f"  speedup           {timings['dict'] / timings['packed']:>10.2f}x",
    ]
    save_report("feature_store", "\n".join(rows))

    # the tentpole claims: one traversal for all filters beats one per
    # filter, and packed bounds are no slower than the dict baseline
    assert timings["shared"] < timings["separate"]
    assert timings["packed"] <= timings["dict"]
