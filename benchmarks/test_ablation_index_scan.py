"""Ablation: inverted-file candidate generation vs. the linear filter scan.

The paper builds the IFI (Algorithm 1) but its query algorithms still scan
every vector.  The merge-count candidate generation of
``repro.search.index_scan`` reads only the postings of the query's own
branches — this bench measures what that buys on a selective range
workload (many trees share no branch with the query) and confirms the two
strategies return identical answers.
"""

import random
import time

from repro.core import InvertedFileIndex
from repro.datasets import SyntheticSpec, generate_dataset
from repro.editdist import EditDistanceCounter
from repro.filters import BinaryBranchFilter
from repro.search import range_query
from repro.search.index_scan import indexed_range_query

from benchmarks.figure_common import current_scale, save_report


def test_ablation_index_scan(benchmark):
    scale = current_scale()
    # several independent seed families -> queries share branches with only
    # part of the collection, the regime candidate generation exploits
    spec = SyntheticSpec(fanout_mean=4, fanout_stddev=0.5,
                         size_mean=30, size_stddev=2, label_count=64,
                         decay=0.08)
    trees = generate_dataset(
        spec, count=scale.dataset_size, seed_count=30, seed=21
    )
    rng = random.Random(22)
    queries = [trees[i] for i in rng.sample(range(len(trees)), 6)]
    threshold = 3

    index = InvertedFileIndex()
    index.add_trees(trees)
    profiles = index.profiles()
    flt = BinaryBranchFilter().fit(trees)
    results = {}

    def run():
        counter = EditDistanceCounter()
        start = time.perf_counter()
        linear_answers = [
            range_query(trees, query, threshold, flt, counter)[0]
            for query in queries
        ]
        results["linear_seconds"] = time.perf_counter() - start
        start = time.perf_counter()
        indexed_answers = [
            indexed_range_query(
                trees, index, query, threshold, counter, profiles=profiles
            )[0]
            for query in queries
        ]
        results["indexed_seconds"] = time.perf_counter() - start
        assert indexed_answers == linear_answers  # exactness
        results["postings_reached"] = sum(
            len(
                {
                    posting.tree_id
                    for branch in profiles[trees.index(query)].branches
                    for posting in index.postings(branch)
                }
            )
            for query in queries
        ) / len(queries)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        "== Ablation: IFI candidate generation vs linear filter scan ==",
        f"  dataset             {len(trees):>10} trees, tau={threshold}",
        f"  trees reached/query {results['postings_reached']:>10.1f}"
        f"  (of {len(trees)})",
        f"  linear filter scan  {results['linear_seconds']:>10.3f} s",
        f"  indexed scan        {results['indexed_seconds']:>10.3f} s",
    ]
    save_report("ablation_index_scan", "\n".join(rows))
    # the index must not be slower than the linear scan by more than noise
    assert results["indexed_seconds"] <= results["linear_seconds"] * 1.5
