"""Ablation: restricted edit-distance variants vs. the general distance.

The §2.1 survey contrasts the general edit distance with Selkow's top-down
distance and Zhang's constrained distance.  This bench quantifies the
trade-off on a synthetic workload: how far above the general distance each
restricted variant sits (they are upper bounds) and what each costs per
pair.
"""

import random
import time

from repro.datasets import SyntheticSpec, generate_dataset
from repro.editdist import (
    alignment_distance,
    constrained_edit_distance,
    selkow_edit_distance,
    tree_edit_distance,
)

from benchmarks.figure_common import save_report


def test_ablation_distance_variants(benchmark):
    spec = SyntheticSpec(fanout_mean=4, fanout_stddev=0.5,
                         size_mean=40, size_stddev=2, label_count=8,
                         decay=0.08)
    trees = generate_dataset(spec, count=30, seed=9)
    rng = random.Random(10)
    pairs = [tuple(rng.sample(trees, 2)) for _ in range(40)]
    results = {}

    def measure():
        for name, fn in [
            ("ZhangShasha", tree_edit_distance),
            ("Alignment", alignment_distance),
            ("Constrained", constrained_edit_distance),
            ("Selkow", selkow_edit_distance),
        ]:
            start = time.perf_counter()
            values = [fn(a, b) for a, b in pairs]
            seconds = (time.perf_counter() - start) / len(pairs)
            results[name] = (sum(values) / len(values), seconds)
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    base = results["ZhangShasha"][0]
    rows = ["== Ablation: restricted edit-distance variants =="]
    for name, (mean, seconds) in results.items():
        rows.append(
            f"  {name:<14} mean distance {mean:7.2f} "
            f"({mean / base:4.2f}x general)  {seconds * 1000:8.3f} ms/pair"
        )
    save_report("ablation_distance_variants", "\n".join(rows))

    # the upper-bound hierarchy must hold on averages too
    assert results["Selkow"][0] >= results["Constrained"][0] >= base
    assert results["Alignment"][0] >= base
