"""Ablation: pruning power and cost of the branch level q (§3.4, §5.3).

Runs the same range workload with BiBranch at q ∈ {2, 3, 4} on deep
synthetic trees (where, unlike shallow DBLP records, higher levels have
structure to encode) and reports accessed data and filter cost.  The paper
discusses the trade-off: higher q encodes more structure but divides by the
larger ``4(q−1)+1`` constant — on most data q = 2 is the sweet spot.
"""

from repro.bench import format_sweep, run_range_comparison
from repro.datasets import SyntheticSpec
from repro.filters import BinaryBranchFilter

from benchmarks.figure_common import (
    current_scale,
    range_threshold,
    save_report,
    synthetic_workload,
)


def test_ablation_qlevel(benchmark):
    scale = current_scale()
    spec = SyntheticSpec(fanout_mean=2, fanout_stddev=0.5,
                         size_mean=40, size_stddev=2, label_count=8, decay=0.05)
    trees, queries = synthetic_workload(
        spec, scale.dataset_size, scale.query_count
    )
    # a tight radius: with the q-level bound factor 4(q-1)+1 the filter can
    # only ever refute when PosBDist may exceed factor·τ, so large radii
    # make q = 4 trivially useless on mid-size trees — the paper's §5.3
    # point; a tight radius lets the levels show gradation instead
    threshold = range_threshold(trees, fraction=0.08)
    filters = [BinaryBranchFilter(q=q) for q in (2, 3, 4)]

    def run():
        return [
            run_range_comparison(
                trees, queries, threshold, filters,
                dataset_label=spec.describe(), include_sequential=False,
            )
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_qlevel", format_sweep(
        "Ablation: branch level q on deep synthetic trees", reports
    ))
    (report,) = reports
    for flt in report.filters:
        assert flt.accessed_pct >= flt.result_pct  # sanity: sound filters
