"""Ablation: per-pair cost of each lower bound vs. the exact distance.

The complexity argument of §4.4: the optimistic bound costs
``O((|T1|+|T2|)·log min(|T1|,|T2|))`` per pair while the exact edit distance
costs ``O(|T1||T2|·…)``.  This bench times, per tree-pair: BDist, the
positional SearchLBound, the histogram bound, the Guha traversal-string
bound (quadratic!), and the Zhang–Shasha distance — demonstrating why the
traversal-string filter "is not scalable to our problem" (§2.2).
"""

import random
import time

from repro.datasets import SyntheticSpec, generate_dataset
from repro.editdist import EditDistanceCounter
from repro.filters import (
    BinaryBranchFilter,
    BranchCountFilter,
    HistogramFilter,
    TraversalStringFilter,
)

from benchmarks.figure_common import save_report


def _time_pairs(label, fn, pairs):
    start = time.perf_counter()
    for a, b in pairs:
        fn(a, b)
    elapsed = (time.perf_counter() - start) / len(pairs)
    return f"  {label:<18}{elapsed * 1000:>10.3f} ms/pair"


def test_ablation_filter_cost(benchmark):
    spec = SyntheticSpec(fanout_mean=4, fanout_stddev=0.5,
                         size_mean=50, size_stddev=2, label_count=8, decay=0.05)
    trees = generate_dataset(spec, count=40, seed=3)
    rng = random.Random(4)
    pairs = [tuple(rng.sample(trees, 2)) for _ in range(60)]

    rows = ["== Ablation: per-pair cost of bounds vs exact distance =="]
    timings = {}

    def measure():
        counter = EditDistanceCounter()
        candidates = {
            "BDist/5": BranchCountFilter(),
            "SearchLBound": BinaryBranchFilter(),
            "Histogram": HistogramFilter(),
            "TraversalSED": TraversalStringFilter(),
        }
        for label, flt in candidates.items():
            signatures = {id(t): flt.signature(t) for t in trees}
            start = time.perf_counter()
            for a, b in pairs:
                flt.bound(signatures[id(a)], signatures[id(b)])
            timings[label] = (time.perf_counter() - start) / len(pairs)
        start = time.perf_counter()
        for a, b in pairs:
            counter.distance(a, b)
        timings["ZhangShasha"] = (time.perf_counter() - start) / len(pairs)
        return timings

    benchmark.pedantic(measure, rounds=1, iterations=1)
    for label, seconds in timings.items():
        rows.append(f"  {label:<18}{seconds * 1000:>10.3f} ms/pair")
    save_report("ablation_filter_cost", "\n".join(rows))

    # the paper's scalability hierarchy
    assert timings["SearchLBound"] < timings["ZhangShasha"]
    assert timings["BDist/5"] < timings["ZhangShasha"]
    assert timings["Histogram"] < timings["ZhangShasha"]
    # the quadratic traversal-string bound is an order of magnitude more
    # expensive than the linear branch bounds
    assert timings["TraversalSED"] > timings["BDist/5"]
