"""Figure 11: sensitivity to the number of labels — range queries.

Datasets ``N{4,0.5}N{50,2}L{y}D0.05`` for y ∈ {8, 16, 32, 64}.  The paper's
observations: BiBranch always wins (by >20× at 8 labels); histogram
filtration improves as labels grow from 8 to 32 (the label histogram gains
discriminative power) and both degrade at 64 as the average distance rises.
"""

from repro.datasets import SyntheticSpec

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sweep_synthetic,
)
from repro.bench import format_sweep

LABELS = [8, 16, 32, 64]


def _specs():
    return {
        f"N{{4,0.5}}N{{50,2}}L{count}D0.05": SyntheticSpec(
            fanout_mean=4, fanout_stddev=0.5,
            size_mean=50, size_stddev=2, label_count=count, decay=0.05,
        )
        for count in LABELS
    }


def test_fig11_labels_range(benchmark):
    scale = current_scale()

    def run():
        return sweep_synthetic(
            "fig11", _specs(), "range", scale.dataset_size, scale.query_count
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig11_labels_range", format_sweep(
        "Figure 11: label count sweep, range queries", reports
    ))
    for report in reports:
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
