"""Ablation: what does the positional refinement buy over plain counts?

DESIGN.md calls out the positional machinery (§4.2) as the paper's main
algorithmic addition over the §3 embedding.  This bench runs the same k-NN
workload under (a) the plain ``⌈BDist/5⌉`` count bound, (b) the positional
``SearchLBound`` bound, and (c) the positional bound with the exact
two-constraint matching, reporting accessed-data percentages and filter
cost for each.
"""


from repro.bench import format_sweep, run_knn_comparison
from repro.datasets import SyntheticSpec
from repro.filters import BinaryBranchFilter, BranchCountFilter

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    synthetic_workload,
)


def test_ablation_positional(benchmark):
    scale = current_scale()
    # a higher decay factor spreads the data out so the bounds' tightness
    # actually decides how far the k-NN scan must go
    spec = SyntheticSpec(fanout_mean=4, fanout_stddev=0.5,
                         size_mean=50, size_stddev=2, label_count=8, decay=0.1)
    trees, queries = synthetic_workload(
        spec, scale.dataset_size, scale.query_count
    )
    filters = [
        BranchCountFilter(),
        BinaryBranchFilter(),
        BinaryBranchFilter(exact_matching=True),
    ]
    filters[2].name = "BiBranch-exactM"

    def run():
        return [
            run_knn_comparison(
                trees, queries, k=max(2, len(trees) // 30), filters=filters,
                dataset_label=spec.describe(), include_sequential=False,
            )
        ]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("ablation_positional", format_sweep(
        "Ablation: count-only vs positional vs exact-matching bounds", reports
    ))
    (report,) = reports
    # the positional bound dominates the count bound, and exact matching
    # dominates the paper's linear-time approximation
    assert accessed(report, "BiBranch") <= accessed(report, "BiBranchCount")
    assert accessed(report, "BiBranch-exactM") <= accessed(report, "BiBranch")
