"""Shared infrastructure for the per-figure benchmark drivers.

Every figure of the paper's §5 has one driver module.  The drivers run the
same protocol as the paper — datasets from the §5 generator (or the
DBLP-like corpus), queries sampled from the dataset, BiBranch vs. histogram
filtration, sequential scan as the timing baseline — and print the rows the
corresponding figure plots.  Results are also written to
``benchmarks/results/``.

Scale
-----
The paper uses 2000 trees and 100 queries per dataset with a C++
implementation.  A pure-Python Zhang–Shasha is two orders of magnitude
slower, so the default scale is reduced; the shapes (who wins, by what
factor, where it degrades) are preserved.  Set the environment variable
``REPRO_BENCH_SCALE`` to ``small`` (default), ``medium``, or ``paper`` to
choose the trade-off.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence

from repro.bench import (
    ComparisonReport,
    average_pairwise_distance,
    run_knn_comparison,
    run_range_comparison,
    select_queries,
)
from repro.datasets import SyntheticSpec, generate_dataset
from repro.filters import BinaryBranchFilter, HistogramFilter
from repro.trees.node import TreeNode

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes for one scale setting."""

    name: str
    dataset_size: int
    query_count: int
    #: cap on the dataset size for the largest-tree sweeps (size 125 trees
    #: cost ~50 ms per exact distance in pure Python)
    large_tree_dataset_size: int
    seed_count: int
    #: DBLP-like records are ~12 nodes, so the DBLP figures can afford a
    #: near-paper dataset even at the small scale
    dblp_dataset_size: int = 1000
    dblp_query_count: int = 10


_SCALES = {
    "small": BenchScale("small", 150, 6, 80, 8, 1000, 10),
    "medium": BenchScale("medium", 500, 20, 250, 15, 2000, 30),
    "paper": BenchScale("paper", 2000, 100, 2000, 25, 2000, 100),
}


def current_scale() -> BenchScale:
    """The active benchmark scale (``REPRO_BENCH_SCALE``, default small)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if name not in _SCALES:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SCALES)}, got {name!r}"
        )
    return _SCALES[name]


def sequential_enabled() -> bool:
    """Whether figure drivers should time the sequential-scan baseline.

    ``REPRO_BENCH_SEQUENTIAL=0`` skips it — at the ``paper`` scale the
    baseline alone costs hours of pure-Python Zhang–Shasha, while the
    accessed-data percentages (the figures' primary series) don't need it.
    """
    return os.environ.get("REPRO_BENCH_SEQUENTIAL", "1") != "0"


def standard_filters():
    """The two filters every figure compares (fresh instances)."""
    return [BinaryBranchFilter(), HistogramFilter()]


def synthetic_workload(
    spec: SyntheticSpec, dataset_size: int, query_count: int, seed: int = 7
):
    """Dataset plus queries for one parameter setting (deterministic)."""
    scale = current_scale()
    trees = generate_dataset(
        spec, count=dataset_size, seed_count=scale.seed_count, seed=seed
    )
    queries = select_queries(trees, query_count, rng=random.Random(seed + 1))
    return trees, queries


def range_threshold(trees: Sequence[TreeNode], fraction: float = 0.2) -> float:
    """The paper's range radius: 1/5 of the dataset's average distance."""
    average = average_pairwise_distance(trees, sample_pairs=150,
                                        rng=random.Random(99))
    return max(1.0, round(average * fraction))


def knn_k(dataset_size: int, fraction: float = 0.0025) -> int:
    """The paper's k: 0.25% of the dataset.

    Floored at 3 — at the scaled-down dataset sizes the paper's fraction
    would give k = 1, where both filters trivially access only the nearest
    cluster and the comparison carries no signal.
    """
    return max(3, round(dataset_size * fraction))


def save_report(figure: str, text: str) -> None:
    """Print the figure's rows and persist them under benchmarks/results/.

    Results are scoped per scale (``results/<scale>/<figure>.txt``) so a
    medium- or paper-scale validation never overwrites the default run.
    """
    print()
    print(text)
    directory = RESULTS_DIR / current_scale().name
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{figure}.txt").write_text(text + "\n")


def sweep_synthetic(
    figure: str,
    specs: Dict[str, SyntheticSpec],
    mode: str,
    dataset_size: int,
    query_count: int,
) -> List[ComparisonReport]:
    """Run one figure's parameter sweep (mode: "range" or "knn")."""
    reports = []
    for label, spec in specs.items():
        trees, queries = synthetic_workload(spec, dataset_size, query_count)
        if mode == "range":
            threshold = range_threshold(trees)
            report = run_range_comparison(
                trees, queries, threshold, standard_filters(),
                dataset_label=label,
                include_sequential=sequential_enabled(),
            )
        else:
            report = run_knn_comparison(
                trees, queries, knn_k(len(trees)), standard_filters(),
                dataset_label=label,
                include_sequential=sequential_enabled(),
            )
        reports.append(report)
    return reports


def accessed(report: ComparisonReport, name: str) -> float:
    """Shortcut: a filter's average accessed-data percentage."""
    return report.filter_report(name).accessed_pct
