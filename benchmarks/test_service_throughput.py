"""Serving-layer throughput: the caching/batching win on repeated traffic.

Not a paper figure — a harness entry for the `repro.service` subsystem.
A repeated-query workload (the regime real serving traffic lives in) is
replayed twice against the same dataset:

* **cold**: every query served one at a time on a cache-disabled service —
  the sum of these wall-clocks is what naive single-shot serving costs;
* **served**: the same stream through a cached `TreeSearchService` with
  concurrent clients.

The assertions encode the subsystem's reason to exist: the cache must
actually hit, answers must be identical, and the served wall-clock must
beat the sum of the cold single-query wall-clocks.
"""


from benchmarks.figure_common import current_scale, save_report
from repro.datasets import SyntheticSpec, generate_dataset
from repro.search.database import TreeDatabase
from repro.service import (
    TreeSearchService,
    WorkloadSpec,
    format_report,
    generate_workload,
    replay,
)

SPEC = SyntheticSpec(
    fanout_mean=4, fanout_stddev=0.5, size_mean=20, size_stddev=2,
    label_count=8, decay=0.05,
)


def test_service_throughput(benchmark):
    scale = current_scale()
    dataset_size = max(60, scale.dataset_size // 2)
    trees = generate_dataset(SPEC, count=dataset_size, seed=11)
    workload = generate_workload(
        trees,
        WorkloadSpec(
            queries=max(30, scale.query_count * 5),
            range_fraction=0.5,
            threshold=3.0,
            k=3,
            repeat_fraction=0.6,
            seed=7,
        ),
    )

    # cold baseline: no result cache, one query at a time
    with TreeSearchService(TreeDatabase(list(trees)), cache_size=0) as cold:
        cold_answers, cold_report = replay(cold, workload, clients=1)
    cold_total = cold_report.total_latency_seconds

    def run():
        with TreeSearchService(
            TreeDatabase(list(trees)), max_workers=4, cache_size=1024
        ) as service:
            return replay(service, workload, clients=4)

    served_answers, served_report = benchmark.pedantic(run, rounds=1, iterations=1)

    snapshot = served_report.metrics
    save_report("service_throughput", "\n".join([
        "Serving-layer throughput (repeated-query workload)",
        "",
        "cold (uncached, serial):",
        format_report(cold_report),
        "",
        "served (cached, concurrent):",
        format_report(served_report),
        "",
        f"speedup vs cold sum-of-latencies: "
        f"{cold_total / max(served_report.wall_seconds, 1e-9):.1f}x",
    ]))

    # identical answers, not merely similar ones
    assert served_answers == cold_answers
    # the cache must be exercised by a repeated-query workload ...
    assert snapshot["cache"]["hits"] > 0
    assert snapshot["cache"]["hit_rate"] > 0.0
    # ... and batched+cached serving must beat the sum of cold wall-clocks
    assert served_report.wall_seconds < cold_total
    # the snapshot reports the observability surface the ISSUE requires
    assert snapshot["seconds"]["filter"] >= 0.0
    assert snapshot["seconds"]["refine"] > 0.0
    for kind_histogram in snapshot["latency"].values():
        assert kind_histogram["p50_seconds"] <= kind_histogram["p99_seconds"]


def test_sharded_service_throughput(benchmark):
    """Shard-parallel scatter-gather vs the single-process service.

    A fresh-query workload (no repeats — the multi-shard path has no
    result cache, so repeats would only flatter the baseline) is replayed
    at shards ∈ {1, 2, 4}.  Answers must be bit-identical at every shard
    count; the ≥2× shards=4 speedup is asserted only when the host
    actually exposes ≥4 CPUs (a single-core container can't parallelise).
    """
    import os

    from repro.sharding import ShardedTreeService

    scale = current_scale()
    dataset_size = max(60, scale.dataset_size // 2)
    trees = generate_dataset(SPEC, count=dataset_size, seed=11)
    workload = generate_workload(
        trees,
        WorkloadSpec(
            queries=max(24, scale.query_count * 4),
            range_fraction=0.5,
            threshold=3.0,
            k=3,
            repeat_fraction=0.0,
            seed=13,
        ),
    )

    def run_at(shards):
        with ShardedTreeService(
            trees,
            shards=shards,
            max_workers=4,
            cache_size=0,  # no result cache anywhere: raw scatter-gather
        ) as service:
            return replay(service, workload, clients=4)

    answers = {}
    reports = {}
    for shards in (1, 2):
        answers[shards], reports[shards] = run_at(shards)
    answers[4], reports[4] = benchmark.pedantic(
        lambda: run_at(4), rounds=1, iterations=1
    )

    lines = [
        "Shard-parallel serving throughput (fresh-query workload)",
        "",
        f"dataset: {dataset_size} trees · "
        f"{len(workload)} queries · 4 client threads",
        "",
    ]
    base = reports[1].wall_seconds
    for shards in (1, 2, 4):
        report = reports[shards]
        lines.append(
            f"shards={shards}:  wall {report.wall_seconds:.4f} s · "
            f"{report.throughput_qps:.1f} queries/s · "
            f"speedup {base / max(report.wall_seconds, 1e-9):.2f}x"
        )
    save_report("service_sharding", "\n".join(lines))

    # sharding must be invisible in the answers, at every layout
    assert answers[2] == answers[1]
    assert answers[4] == answers[1]
    # the scaling claim needs actual cores to stand on
    if len(os.sched_getaffinity(0)) >= 4:
        assert reports[4].wall_seconds * 2.0 <= base
