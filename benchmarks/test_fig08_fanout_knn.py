"""Figure 8: sensitivity to fanout — k-NN queries.

Same datasets as Figure 7; k = 0.25% of the dataset.  The paper's
observations: BiBranch accesses at most ~23% of what histogram filtration
accesses, and the filtering overhead is a negligible fraction (~2%) of the
sequential-scan CPU cost.
"""

from repro.datasets import SyntheticSpec

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sweep_synthetic,
)
from repro.bench import format_sweep

FANOUTS = [2, 4, 6, 8]


def _specs():
    return {
        f"N{{{fanout},0.5}}N{{50,2}}L8D0.05": SyntheticSpec(
            fanout_mean=fanout, fanout_stddev=0.5,
            size_mean=50, size_stddev=2, label_count=8, decay=0.05,
        )
        for fanout in FANOUTS
    }


def test_fig08_fanout_knn(benchmark):
    scale = current_scale()

    def run():
        return sweep_synthetic(
            "fig08", _specs(), "knn", scale.dataset_size, scale.query_count
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig08_fanout_knn", format_sweep(
        "Figure 8: fanout sweep, k-NN queries", reports
    ))
    for report in reports:
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
        if report.sequential_seconds is not None:
            bibranch = report.filter_report("BiBranch")
            # filtering overhead is a small fraction of the sequential cost
            assert bibranch.filter_seconds < 0.25 * report.sequential_seconds
