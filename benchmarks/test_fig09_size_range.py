"""Figure 9: sensitivity to tree size — range queries.

Datasets ``N{4,0.5}N{s,2}L8D0.05`` for size means s ∈ {25, 50, 75, 125}.
The paper's findings: BiBranch accesses barely more than the result set for
every size; histogram filtration degrades badly as trees grow (at size 125
BiBranch wins by over 70×) because with fixed fanout and labels the
height/degree/label histograms hardly change while the branch vocabulary
keeps growing; and the sequential scan cost grows quadratically with size.
"""

from repro.datasets import SyntheticSpec

from benchmarks.figure_common import (
    accessed,
    current_scale,
    save_report,
    sweep_synthetic,
)
from repro.bench import format_sweep

SIZES = [25, 50, 75, 125]


def _specs():
    return {
        f"N{{4,0.5}}N{{{size},2}}L8D0.05": SyntheticSpec(
            fanout_mean=4, fanout_stddev=0.5,
            size_mean=size, size_stddev=2, label_count=8, decay=0.05,
        )
        for size in SIZES
    }


def test_fig09_size_range(benchmark):
    scale = current_scale()

    def run():
        return sweep_synthetic(
            "fig09", _specs(), "range",
            scale.large_tree_dataset_size, scale.query_count,
        )

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report("fig09_size_range", format_sweep(
        "Figure 9: tree size sweep, range queries", reports
    ))
    for report in reports:
        assert accessed(report, "BiBranch") <= accessed(report, "Histo")
    # the BiBranch advantage over Histo widens as trees grow
    first, last = reports[0], reports[-1]
    ratio_small = accessed(first, "Histo") / max(accessed(first, "BiBranch"), 1e-9)
    ratio_large = accessed(last, "Histo") / max(accessed(last, "BiBranch"), 1e-9)
    assert ratio_large >= ratio_small * 0.8  # monotone up to noise
    # sequential cost grows steeply with tree size
    if reports[0].sequential_seconds is not None:
        assert reports[-1].sequential_seconds > reports[0].sequential_seconds
