"""Filter-stage speedup of the corpus-level matrix kernels.

Not a paper figure — a harness entry for the vectorized candidate
generation path (`repro.features.matrix`).  The same range-query stream
is answered twice over the same fitted filter:

* **loop**: the pure per-candidate reference path (``matrices=None``);
* **vectorized**: the filter cascade over the corpus-level matrix
  planes.

Only the filter stage is compared (``stats.filter_seconds``); the refine
stage is identical work by construction.  The assertions encode the
subsystem's contract: bit-identical answers, identical refined-candidate
counts, and an order-of-magnitude-class (>= 5x) filter-stage speedup.
The `search:vectorized-equivalence` oracle checks the equivalence across
far more configurations; this driver pins the *performance* claim.
"""

from benchmarks.figure_common import current_scale, save_report
from repro.datasets import SyntheticSpec, generate_dataset
from repro.filters.binary_branch import BranchCountFilter
from repro.search.database import TreeDatabase
from repro.search.range_query import range_query

SPEC = SyntheticSpec(
    fanout_mean=4, fanout_stddev=0.5, size_mean=20, size_stddev=2,
    label_count=8, decay=0.05,
)

THRESHOLD = 1.0
QUERY_COUNT = 12
MIN_SPEEDUP = 5.0


def _run_stream(trees, queries, flt, counter, matrices):
    answers = []
    filter_seconds = 0.0
    candidates = 0
    for query in queries:
        matches, stats = range_query(
            trees, query, THRESHOLD, flt, counter, matrices=matrices
        )
        answers.append(matches)
        filter_seconds += stats.filter_seconds
        candidates += stats.candidates
    return answers, filter_seconds, candidates


def test_vectorized_filter_stage_speedup(benchmark):
    scale = current_scale()
    # the loop path is itself numpy-backed per candidate, so the matrix
    # win needs a corpus big enough for the O(n) python iteration to
    # dominate the per-query fixed costs
    dataset_size = max(1500, scale.dataset_size * 4)
    trees = generate_dataset(SPEC, count=dataset_size, seed=23)
    queries = trees[:QUERY_COUNT]

    database = TreeDatabase(list(trees), flt=BranchCountFilter())
    flt, counter = database.filter, database.counter
    matrices = database.matrices()
    assert matrices is not None

    # warm both paths once: plane sync (row scatter + widening) is a
    # one-time build cost, not the steady-state filter stage under test
    _run_stream(trees, queries[:1], flt, counter, None)
    _run_stream(trees, queries[:1], flt, counter, matrices)

    loop_answers, loop_seconds, loop_candidates = _run_stream(
        trees, queries, flt, counter, None
    )

    def run():
        return _run_stream(trees, queries, flt, counter, matrices)

    fast_answers, fast_seconds, fast_candidates = benchmark.pedantic(
        run, rounds=3, iterations=1
    )

    speedup = loop_seconds / max(fast_seconds, 1e-9)
    save_report("vectorized_filters", "\n".join([
        "Vectorized filter stage vs per-candidate loop (range queries)",
        "",
        f"dataset: {dataset_size} trees, {len(queries)} queries, "
        f"threshold {THRESHOLD:g}, filter {flt.name}",
        f"loop filter stage:        {loop_seconds * 1e3:8.2f} ms "
        f"({loop_candidates} refined candidates)",
        f"vectorized filter stage:  {fast_seconds * 1e3:8.2f} ms "
        f"({fast_candidates} refined candidates)",
        f"filter-stage speedup:     {speedup:8.1f}x",
    ]))

    # the contract, not just the headline: identical answers and effort
    assert fast_answers == loop_answers
    assert fast_candidates == loop_candidates
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized filter stage only {speedup:.1f}x faster "
        f"(need >= {MIN_SPEEDUP:g}x)"
    )
