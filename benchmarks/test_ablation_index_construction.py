"""Ablation: IFI batch construction vs. direct per-tree extraction.

Algorithm 1 builds all vectors through the inverted file in one pass;
the alternative is extracting each tree's profile independently.  Both must
produce identical vectors (asserted) — the bench compares construction
cost and reports the index's vocabulary statistics (§4.4's space analysis:
one posting entry per node, vocabulary at most Σ|Ti|).
"""

import time

from repro.core import InvertedFileIndex, branch_vector, positional_profile
from repro.datasets import SyntheticSpec, generate_dataset

from benchmarks.figure_common import current_scale, save_report


def test_ablation_index_construction(benchmark):
    scale = current_scale()
    spec = SyntheticSpec(fanout_mean=4, fanout_stddev=0.5,
                         size_mean=50, size_stddev=2, label_count=8, decay=0.05)
    trees = generate_dataset(spec, count=scale.dataset_size, seed=5)
    timings = {}

    def measure():
        start = time.perf_counter()
        index = InvertedFileIndex()
        index.add_trees(trees)
        vectors_via_index = index.vectors()
        timings["ifi_build"] = time.perf_counter() - start

        start = time.perf_counter()
        direct_vectors = {i: branch_vector(t) for i, t in enumerate(trees)}
        timings["direct_vectors"] = time.perf_counter() - start

        start = time.perf_counter()
        profiles = {i: positional_profile(t) for i, t in enumerate(trees)}
        timings["direct_profiles"] = time.perf_counter() - start

        assert vectors_via_index == direct_vectors
        total_nodes = sum(t.size for t in trees)
        assert index.vocabulary_size <= total_nodes
        timings["vocabulary"] = index.vocabulary_size
        timings["total_nodes"] = total_nodes
        return timings

    benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        "== Ablation: inverted file vs direct vector construction ==",
        f"  trees              {len(trees):>10}",
        f"  total nodes        {timings['total_nodes']:>10}",
        f"  vocabulary |Γ|     {timings['vocabulary']:>10}",
        f"  IFI build + scan   {timings['ifi_build']:>10.3f} s",
        f"  direct vectors     {timings['direct_vectors']:>10.3f} s",
        f"  direct profiles    {timings['direct_profiles']:>10.3f} s",
    ]
    save_report("ablation_index_construction", "\n".join(rows))
