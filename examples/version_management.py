"""Document version management: structural diffs between revisions (§1).

Tracks a small configuration document through three revisions, uses the
edit mapping to produce human-readable structural diffs between versions,
and uses the filter-accelerated similarity self-join to find which archived
revisions are near-duplicates.

Run with:  python examples/version_management.py
"""

from repro import TreeDatabase, parse_xml_string, similarity_self_join
from repro.editdist import tree_edit_mapping
from repro.filters import BinaryBranchFilter

REVISIONS = {
    "v1": """
      <service name="search">
        <replicas>2</replicas>
        <resources><cpu>2</cpu><memory>4Gi</memory></resources>
        <env><LOG_LEVEL>info</LOG_LEVEL></env>
      </service>
    """,
    "v2": """
      <service name="search">
        <replicas>4</replicas>
        <resources><cpu>2</cpu><memory>4Gi</memory></resources>
        <env><LOG_LEVEL>info</LOG_LEVEL></env>
      </service>
    """,
    "v3": """
      <service name="search">
        <replicas>4</replicas>
        <resources><cpu>4</cpu><memory>8Gi</memory></resources>
        <env><LOG_LEVEL>debug</LOG_LEVEL><TRACING>on</TRACING></env>
      </service>
    """,
    # an abandoned branch that drifted from v1
    "v1-hotfix": """
      <service name="search">
        <replicas>2</replicas>
        <resources><cpu>2</cpu><memory>4Gi</memory></resources>
        <env><LOG_LEVEL>warn</LOG_LEVEL></env>
      </service>
    """,
}


def diff(old_name: str, new_name: str, old_tree, new_tree) -> None:
    mapping = tree_edit_mapping(old_tree, new_tree)
    print(f"{old_name} -> {new_name}  (edit distance {mapping.cost:g})")
    for operation in mapping.operations():
        print(f"    {operation}")
    print()


def main() -> None:
    names = list(REVISIONS)
    trees = {name: parse_xml_string(text) for name, text in REVISIONS.items()}

    print("=== structural diffs along the revision chain ===\n")
    diff("v1", "v2", trees["v1"], trees["v2"])
    diff("v2", "v3", trees["v2"], trees["v3"])

    print("=== near-duplicate detection across the archive ===\n")
    forest = [trees[name] for name in names]
    flt = BinaryBranchFilter().fit(forest)
    pairs, stats = similarity_self_join(forest, threshold=2, flt=flt)
    for i, j, distance in pairs:
        print(f"  {names[i]} ~ {names[j]}  (distance {distance:g})")
    print(f"\nfilter pruned {stats.dataset_size - stats.candidates} of "
          f"{stats.dataset_size} candidate pairs before any exact distance")


if __name__ == "__main__":
    main()
