"""A miniature tour of the paper's experimental protocol (§5).

Generates one synthetic dataset with the paper's default parameters
``N{4,0.5}N{50,2}L8D0.05``, then runs a range-query and a k-NN workload
comparing BiBranch and histogram filtration against the sequential scan —
a single-point preview of Figures 7–12 (the full sweeps live in
``benchmarks/``).

Run with:  python examples/synthetic_benchmark_tour.py
"""

import random

from repro.bench import (
    average_pairwise_distance,
    format_comparison,
    run_knn_comparison,
    run_range_comparison,
    select_queries,
)
from repro.datasets import parse_spec, generate_dataset
from repro.filters import BinaryBranchFilter, HistogramFilter
from repro.trees import dataset_summary

SPEC = "N{4,0.5}N{50,2}L8D0.05"


def main() -> None:
    spec = parse_spec(SPEC)
    trees = generate_dataset(spec, count=120, seed_count=8, seed=1)
    queries = select_queries(trees, 5, rng=random.Random(2))

    summary = dataset_summary(trees)
    average = average_pairwise_distance(trees, sample_pairs=100)
    print(f"dataset {SPEC}: {summary['count']} trees, "
          f"avg size {summary['avg_size']:.1f}, avg distance {average:.1f}\n")

    threshold = max(1, round(average / 5))
    report = run_range_comparison(
        trees, queries, threshold,
        [BinaryBranchFilter(), HistogramFilter()],
        dataset_label=SPEC,
    )
    print(format_comparison(report))
    print()

    report = run_knn_comparison(
        trees, queries, k=3,
        filters=[BinaryBranchFilter(), HistogramFilter()],
        dataset_label=SPEC,
    )
    print(format_comparison(report))
    print("\n(the full parameter sweeps for every figure: "
          "pytest benchmarks/ --benchmark-only -s)")


if __name__ == "__main__":
    main()
