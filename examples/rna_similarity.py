"""RNA secondary structure similarity (the paper's §1 biology motivation).

Three structural families — hairpins, cloverleafs (tRNA-like) and
double-stem structures — are encoded as trees; a k-NN query with the
BiBranch filter assigns an unlabeled molecule to its family, and the
similarity self-join surfaces the structurally redundant entries.

Run with:  python examples/rna_similarity.py
"""

import random
from typing import List, Tuple

from repro import TreeDatabase, similarity_self_join
from repro.filters import BinaryBranchFilter
from repro.trees.rna import rna_to_tree

BASES = "ACGU"
PAIRS = [("G", "C"), ("C", "G"), ("A", "U"), ("U", "A"), ("G", "U")]


def make_hairpin(rng: random.Random, stem_range=(4, 7)) -> Tuple[str, str]:
    stem = rng.randint(*stem_range)
    loop = rng.randint(3, 6)
    left, right = zip(*(rng.choice(PAIRS) for _ in range(stem)))
    seq = "".join(left) + "".join(rng.choice(BASES) for _ in range(loop)) + \
        "".join(reversed(right))
    struct = "(" * stem + "." * loop + ")" * stem
    return seq, struct


def make_cloverleaf(rng: random.Random) -> Tuple[str, str]:
    """Three hairpin arms off a closing stem — the tRNA silhouette."""
    arms = [make_hairpin(rng) for _ in range(3)]
    stem = rng.randint(3, 5)
    left, right = zip(*(rng.choice(PAIRS) for _ in range(stem)))
    seq = "".join(left)
    struct = "(" * stem
    for arm_seq, arm_struct in arms:
        seq += arm_seq + rng.choice(BASES)
        struct += arm_struct + "."
    seq += "".join(reversed(right))
    struct += ")" * stem
    return seq, struct


def make_double_stem(rng: random.Random) -> Tuple[str, str]:
    # long twin stems keep the family structurally far from single hairpins
    (s1, t1), (s2, t2) = make_hairpin(rng, (7, 9)), make_hairpin(rng, (7, 9))
    linker = rng.randint(2, 4)
    seq = s1 + "".join(rng.choice(BASES) for _ in range(linker)) + s2
    struct = t1 + "." * linker + t2
    return seq, struct


def main() -> None:
    rng = random.Random(2005)
    families = {
        "hairpin": make_hairpin,
        "cloverleaf": make_cloverleaf,
        "double-stem": make_double_stem,
    }
    molecules: List = []
    labels: List[str] = []
    for name, factory in families.items():
        for _ in range(10):
            sequence, structure = factory(rng)
            molecules.append(rna_to_tree(sequence, structure))
            labels.append(name)

    # plant a redundant entry: the first hairpin with a single point mutation
    duplicate = molecules[0].clone()
    duplicate.leaves().__next__().label = "A"
    molecules.append(duplicate)
    labels.append("hairpin")

    db = TreeDatabase(molecules)
    print(f"indexed {len(db)} RNA structures "
          f"({', '.join(sorted(families))})\n")

    # classify three held-out molecules by 3-NN majority vote
    correct = 0
    probes = [("hairpin", make_hairpin), ("cloverleaf", make_cloverleaf),
              ("double-stem", make_double_stem)]
    for true_family, factory in probes:
        sequence, structure = factory(rng)
        query = rna_to_tree(sequence, structure)
        neighbors, stats = db.knn(query, 3)
        votes = [labels[index] for index, _ in neighbors]
        predicted = max(set(votes), key=votes.count)
        marker = "+" if predicted == true_family else "-"
        correct += predicted == true_family
        print(f"  [{marker}] {true_family:<12} -> predicted {predicted:<12} "
              f"(neighbors: {votes}, accessed "
              f"{stats.accessed_percentage:.0f}%)")
    print(f"\nclassification: {correct}/3 correct")

    # structural redundancy: near-identical molecules in the collection
    flt = BinaryBranchFilter().fit(molecules)
    pairs, stats = similarity_self_join(molecules, threshold=2, flt=flt)
    print(f"near-duplicate structures (distance <= 2): {len(pairs)} pairs; "
          f"filter pruned {stats.dataset_size - stats.candidates} of "
          f"{stats.dataset_size} candidate pairs")
    assert correct == 3


if __name__ == "__main__":
    main()
