"""Clustering tree-structured data with filter-accelerated k-medoids (§1).

Three seed "species" of trees are mutated into a population; a k-medoids
clustering (PAM-style, with the BiBranch lower bound pruning distance
computations during assignment) recovers the three families.

Run with:  python examples/tree_clustering.py
"""

import random
from typing import List, Sequence

from repro.core import positional_profile, search_lower_bound
from repro.datasets import mutate_tree
from repro.editdist import EditDistanceCounter
from repro.trees import TreeNode, parse_bracket, random_tree

LABELS = ["a", "b", "c", "d", "e", "f"]


def assign(
    trees: Sequence[TreeNode],
    profiles,
    medoids: List[int],
    counter: EditDistanceCounter,
) -> List[int]:
    """Assign each tree to its nearest medoid, pruning with lower bounds."""
    assignment = []
    for index, tree in enumerate(trees):
        best_medoid, best_distance = -1, float("inf")
        # visit medoids in ascending lower-bound order; stop when the bound
        # already exceeds the best exact distance found (multi-step 1-NN)
        bounds = sorted(
            (search_lower_bound(profiles[index], profiles[m]), m)
            for m in medoids
        )
        for bound, medoid in bounds:
            if bound >= best_distance:
                break
            distance = counter.distance(tree, trees[medoid])
            if distance < best_distance:
                best_medoid, best_distance = medoid, distance
        assignment.append(best_medoid)
    return assignment


def update_medoids(
    trees: Sequence[TreeNode],
    assignment: List[int],
    medoids: List[int],
    counter: EditDistanceCounter,
) -> List[int]:
    """Pick each cluster's member minimizing total in-cluster distance."""
    new_medoids = []
    for medoid in medoids:
        members = [i for i, a in enumerate(assignment) if a == medoid]
        best, best_total = medoid, float("inf")
        for candidate in members:
            total = sum(
                counter.distance(trees[candidate], trees[other])
                for other in members
            )
            if total < best_total:
                best, best_total = candidate, total
        new_medoids.append(best)
    return new_medoids


def main() -> None:
    rng = random.Random(17)
    species = [
        random_tree(rng, LABELS, size_mean=18, size_stddev=1, fanout_mean=2),
        random_tree(rng, LABELS, size_mean=18, size_stddev=1, fanout_mean=5),
        parse_bracket("r(x(y(z(w))),x(y(z)))"),
    ]
    trees: List[TreeNode] = []
    truth: List[int] = []
    for kind, seed_tree in enumerate(species):
        for _ in range(12):
            trees.append(mutate_tree(seed_tree, 0.08, LABELS, rng))
            truth.append(kind)
    order = rng.sample(range(len(trees)), len(trees))
    trees = [trees[i] for i in order]
    truth = [truth[i] for i in order]

    profiles = [positional_profile(tree) for tree in trees]
    counter = EditDistanceCounter()
    medoids = rng.sample(range(len(trees)), 3)

    for iteration in range(6):
        assignment = assign(trees, profiles, medoids, counter)
        new_medoids = update_medoids(trees, assignment, medoids, counter)
        if sorted(new_medoids) == sorted(medoids):
            break
        medoids = new_medoids
    assignment = assign(trees, profiles, medoids, counter)

    print(f"clustered {len(trees)} trees into {len(medoids)} clusters "
          f"in {iteration + 1} iterations "
          f"({counter.calls} exact distances computed)\n")
    purity_hits = 0
    for medoid in sorted(set(assignment)):
        members = [i for i, a in enumerate(assignment) if a == medoid]
        kinds = [truth[i] for i in members]
        majority = max(set(kinds), key=kinds.count)
        purity_hits += kinds.count(majority)
        print(f"  cluster around tree #{medoid}: {len(members)} members, "
              f"{100 * kinds.count(majority) / len(kinds):.0f}% species "
              f"{majority}")
    purity = purity_hits / len(trees)
    print(f"\noverall purity: {100 * purity:.0f}%")
    assert purity >= 0.8, "clusters should recover the species"


if __name__ == "__main__":
    main()
