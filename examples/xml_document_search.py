"""XML similarity search under spelling errors (the paper's §1 motivation).

A small product-catalog XML corpus is indexed; a query document containing
typos and a missing element still retrieves its true counterpart, because
the tree edit distance tolerates relabelings and deletions — and the
BiBranch filter finds it while computing only a couple of exact distances.

Run with:  python examples/xml_document_search.py
"""

from repro import TreeDatabase, parse_xml_string

CATALOG = [
    """
    <product sku="100">
      <name>espresso machine</name>
      <brand>Aurora</brand>
      <specs><power>1200W</power><pressure>15bar</pressure></specs>
      <price currency="EUR">249</price>
    </product>
    """,
    """
    <product sku="101">
      <name>drip coffee maker</name>
      <brand>Aurora</brand>
      <specs><power>900W</power><capacity>1.2l</capacity></specs>
      <price currency="EUR">59</price>
    </product>
    """,
    """
    <product sku="102">
      <name>milk frother</name>
      <brand>Borealis</brand>
      <specs><power>500W</power></specs>
      <price currency="EUR">39</price>
    </product>
    """,
    """
    <book isbn="9780000000001">
      <title>The Art of Computer Programming</title>
      <author>Donald E. Knuth</author>
      <publisher>Addison-Wesley</publisher>
    </book>
    """,
    """
    <book isbn="9780000000002">
      <title>Transaction Processing</title>
      <author>Jim Gray</author>
      <author>Andreas Reuter</author>
      <publisher>Morgan Kaufmann</publisher>
    </book>
    """,
]

# the user's query: sku missing, one typo in the brand, power misspelled
QUERY = """
<product>
  <name>espresso machine</name>
  <brand>Aurora</brand>
  <specs><powr>1200W</powr><pressure>15bar</pressure></specs>
  <price currency="EUR">249</price>
</product>
"""


def main() -> None:
    documents = [parse_xml_string(text) for text in CATALOG]
    database = TreeDatabase(documents)

    query = parse_xml_string(QUERY)
    print(f"query tree has {query.size} nodes; database holds "
          f"{len(database)} documents\n")

    neighbors, stats = database.knn(query, k=2)
    print("2 most similar documents:")
    for index, distance in neighbors:
        root = documents[index]
        ident = root.children[0].label if root.children else "?"
        print(f"  #{index} <{root.label} {ident}>  edit distance {distance:g}")
    print(f"\nfilter effectiveness: computed {stats.candidates} exact "
          f"distances out of {stats.dataset_size} "
          f"({stats.accessed_percentage:.0f}% accessed)")

    matches, _ = database.range_query(query, 3)
    print(f"\ndocuments within edit distance 3: "
          f"{[index for index, _ in matches]}")
    assert neighbors[0][0] == 0, "the espresso machine should win"


if __name__ == "__main__":
    main()
