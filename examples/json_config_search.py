"""Finding similar JSON configurations (modern tree-structured data).

A fleet of service configurations (JSON) is indexed as trees; given one
service's config, similarity search finds the services configured almost
identically (drift detection), and the structural diff explains exactly
what differs.

Run with:  python examples/json_config_search.py
"""

import json
import random

from repro import TreeDatabase, parse_json_string
from repro.editdist import tree_edit_mapping

BASE_CONFIG = {
    "image": "registry/app:1.4",
    "replicas": 3,
    "resources": {"cpu": 2, "memory": "4Gi"},
    "env": {"LOG_LEVEL": "info", "REGION": "eu-1"},
    "probes": {"liveness": "/healthz", "readiness": "/ready"},
}


def make_fleet(count: int, seed: int = 11):
    """Derive per-service configs from the base with realistic drift."""
    rng = random.Random(seed)
    fleet = []
    for index in range(count):
        config = json.loads(json.dumps(BASE_CONFIG))  # deep copy
        config["image"] = f"registry/app:1.{rng.randint(3, 5)}"
        if rng.random() < 0.3:
            config["replicas"] = rng.choice([2, 3, 5])
        if rng.random() < 0.25:
            config["env"]["LOG_LEVEL"] = "debug"
        if rng.random() < 0.2:
            config["env"]["FEATURE_X"] = "on"
        if rng.random() < 0.15:
            del config["probes"]["readiness"]
        fleet.append((f"service-{index:02d}", config))
    return fleet


def main() -> None:
    fleet = make_fleet(25)
    names = [name for name, _ in fleet]
    trees = [parse_json_string(json.dumps(config)) for _, config in fleet]
    db = TreeDatabase(trees)
    print(f"indexed {len(db)} JSON configurations "
          f"(avg {sum(t.size for t in trees) / len(trees):.0f} nodes)\n")

    reference = parse_json_string(json.dumps(BASE_CONFIG))
    matches, stats = db.range_query(reference, 2)
    print(f"services within edit distance 2 of the golden config "
          f"({stats.accessed_percentage:.0f}% of configs examined):")
    for index, distance in matches:
        print(f"  {names[index]}  (distance {distance:g})")

    drifted = max(range(len(trees)),
                  key=lambda i: db.edit_distance(reference, trees[i]))
    print(f"\nmost drifted service: {names[drifted]}")
    mapping = tree_edit_mapping(reference, trees[drifted])
    for operation in mapping.operations():
        print(f"  {operation}")


if __name__ == "__main__":
    main()
