"""Bibliographic k-NN search on a DBLP-like corpus (the paper's §5.2 setup).

Generates a DBLP-like dataset, reports its structural statistics (compare
with the paper's "10.15 nodes on average, average depth 2.9"), then runs
k-NN queries with the BiBranch filter and the histogram comparator and
prints their accessed-data percentages side by side.

Run with:  python examples/dblp_knn.py [record_count]
"""

import random
import sys

from repro import TreeDatabase
from repro.bench import average_pairwise_distance, select_queries
from repro.datasets import generate_dblp_dataset
from repro.filters import space_parity_histogram_filter
from repro.trees import dataset_summary, to_bracket


def main(count: int = 200) -> None:
    records = generate_dblp_dataset(count, seed=2005)
    summary = dataset_summary(records)
    print(f"DBLP-like corpus: {summary['count']} records, "
          f"avg size {summary['avg_size']:.2f} nodes, "
          f"avg height {summary['avg_height']:.2f}, "
          f"{summary['labels']} distinct labels")
    print(f"average pairwise edit distance ≈ "
          f"{average_pairwise_distance(records, sample_pairs=100):.2f} "
          f"(paper reports 5.03 on real DBLP)\n")

    bibranch_db = TreeDatabase(records)
    # the histogram comparator uses the paper's space-parity folding
    histogram_db = TreeDatabase(records, flt=space_parity_histogram_filter(records))

    queries = select_queries(records, 5, rng=random.Random(1))
    k = 5
    print(f"{k}-NN over {len(records)} records, 5 queries:\n")
    for number, query in enumerate(queries):
        neighbors, bib_stats = bibranch_db.knn(query, k)
        _, histo_stats = histogram_db.knn(query, k)
        print(f"query {number}: {to_bracket(query)[:60]}...")
        print(f"  nearest (after itself): "
              f"{[(i, f'{d:g}') for i, d in neighbors[:3]]}")
        print(f"  accessed  BiBranch {bib_stats.accessed_percentage:5.1f}%   "
              f"Histo {histo_stats.accessed_percentage:5.1f}%")
    print(f"\ntotal exact distance computations: "
          f"BiBranch={bibranch_db.distance_computations}, "
          f"Histo={histogram_db.distance_computations}, "
          f"sequential would need {len(queries) * len(records)}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200)
