"""Quickstart: binary branch distance and similarity search in 60 seconds.

Run with:  python examples/quickstart.py
"""

from repro import (
    TreeDatabase,
    branch_distance,
    branch_lower_bound,
    parse_bracket,
    positional_lower_bound,
    to_bracket,
    tree_edit_distance,
    tree_edit_mapping,
)


def main() -> None:
    # -- trees are written in bracket notation ---------------------------
    t1 = parse_bracket("a(b(c,d),b(c,d),e)")  # the paper's Figure 1, T1
    t2 = parse_bracket("a(b(c,d,b(e)),c,d,e)")  # ... and T2
    print("T1 =", to_bracket(t1))
    print("T2 =", to_bracket(t2))

    # -- the exact edit distance (Zhang-Shasha) and its witness ----------
    distance = tree_edit_distance(t1, t2)
    mapping = tree_edit_mapping(t1, t2)
    print(f"\nexact edit distance: {distance:g}")
    print("optimal edit script:", "; ".join(mapping.operations()))

    # -- the paper's embedding: O(|T1|+|T2|) lower bounds -----------------
    print(f"\nbinary branch distance BDist: {branch_distance(t1, t2)}")
    print(f"count lower bound  ceil(BDist/5): {branch_lower_bound(t1, t2):g}")
    print(f"positional lower bound (SearchLBound): "
          f"{positional_lower_bound(t1, t2):g}")

    # -- filter-and-refine similarity search ------------------------------
    database = TreeDatabase(
        [
            parse_bracket(text)
            for text in [
                "a(b(c,d),b(c,d),e)",
                "a(b(c,d),b(c),e)",
                "a(b(c,d,b(e)),c,d,e)",
                "x(y(z),w)",
                "a(e,e,e)",
            ]
        ]
    )
    query = parse_bracket("a(b(c,d),b(c,d),e)")

    matches, stats = database.range_query(query, 2)
    print(f"\nrange query (tau=2): matches {matches}")
    print(f"  accessed {stats.accessed_percentage:.0f}% of the database "
          f"({stats.candidates}/{stats.dataset_size} exact distances)")

    neighbors, stats = database.knn(query, 2)
    print(f"2-NN: {neighbors}")
    print(f"  accessed {stats.accessed_percentage:.0f}% of the database")


if __name__ == "__main__":
    main()
